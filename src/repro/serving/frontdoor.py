"""The network front door: an asyncio TCP service over the schedulers.

The pools are in-process; this module is what turns them into a
*service*.  A :class:`FrontDoor` owns a scheduler
(:class:`~repro.serving.scheduler.MicroBatchScheduler` or
:class:`~repro.serving.sharded.ShardedScheduler`) and exposes it over a
TCP socket with the four behaviours an SLO needs:

- **admission control** — at most ``max_inflight`` requests are
  admitted at once; an overflowing request is answered with an explicit
  ``rejected`` status immediately (never a hang);
- **backpressure** — after rejecting, the connection's reader stops
  pulling frames off the socket until capacity frees up, so a client
  that keeps blasting fills its own TCP window instead of the server's
  memory;
- **per-request deadlines** — a request may carry ``timeout_ms``; a
  request whose deadline passes while queued is answered
  ``deadline_exceeded`` and *dropped before dispatch*; one that expires
  while executing gets the same status when its (discarded) result
  lands;
- **graceful drain** — :meth:`drain` (wired to SIGTERM by the CLI)
  answers new requests with ``draining`` while every admitted request
  completes on its epoch; :meth:`publish` hot-swaps snapshots at a wave
  boundary, so the scheduler's barrier semantics are preserved and
  answers stay bit-identical to a single-process engine across swaps.

Wire protocol — length-prefixed JSON frames, both directions::

    frame    := uint32_be length | payload (UTF-8 JSON object, `length` bytes)
    request  := {"id": any, "op": "query", "query": int, "k": int,
                 "timeout_ms": number?, "precision": str?,
                 "eps": number?}               # also: "ping", "info"
    response := {"id": any, "status": "ok" | "rejected" |
                 "deadline_exceeded" | "draining" | "error",
                 "items": [[node, proximity], ...]?, "epoch": int?,
                 "precision": str?, "error_bound": number?,
                 "message": str?}

``precision`` selects the serving tier (``"exact"``, ``"bounded"``,
``"best_effort"``, or a full spec like ``"bounded(1e-4)"``; ``eps``
overrides the tier's error target).  Requests that omit it are served
at the backend's default tier with byte-identical responses to the
pre-precision protocol; requests that carry it get ``precision`` (the
canonical spec) and ``error_bound`` (the reported CPI residual, 0.0
for exact answers) echoed in the ``ok`` response.  The terminal-status
set is unchanged — a malformed precision is an ``error`` like any
other bad field.

JSON ``repr``/parse of a Python float round-trips the IEEE-754 double
exactly, so "bit-identical over the wire" is a real guarantee, asserted
by the tests against :meth:`~repro.query.engine.QueryEngine.top_k_many`.

Threading model (the scheduler is synchronous and single-owner):

- the **I/O thread** runs the asyncio event loop: accepts connections,
  reads frames, performs admission, writes responses;
- the **dispatch thread** owns the scheduler: it pulls admitted
  requests off a thread-safe queue in *waves* (everything queued at
  that moment), submits them, drains the pool, and resolves each
  request's future via ``loop.call_soon_threadsafe``.

Every terminal outcome increments exactly one of the per-status
counters, so ``ok + rejected + draining + deadline_exceeded + error ==
offered`` always reconciles — the overload acceptance test asserts it.
"""

from __future__ import annotations

import asyncio
import json
import queue as queue_module
import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..exceptions import InvalidParameterError, ServingError
from ..obs.metrics import Histogram, NULL_REGISTRY
from ..query.approx import PrecisionPolicy
from .snapshot import Snapshot

#: Frame header: one big-endian uint32 payload length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; a length beyond this is treated
#: as a protocol violation (protects the server from a garbage header
#: demanding a 4 GiB read).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Terminal response statuses.  Every admitted-or-not request receives
#: exactly one of these; the counters reconcile against ``offered``.
STATUSES = ("ok", "rejected", "draining", "deadline_exceeded", "error")


def encode_frame(payload: dict) -> bytes:
    """One wire frame: uint32-be length prefix + compact JSON."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return FRAME_HEADER.pack(len(data)) + data


class _Request:
    """One admitted query riding from the I/O thread to dispatch."""

    __slots__ = (
        "req_id",
        "query",
        "k",
        "precision",
        "deadline",
        "t_recv",
        "future",
    )

    def __init__(self, req_id, query, k, precision, deadline, t_recv, future):
        self.req_id = req_id
        self.query = query
        self.k = k
        self.precision = precision  # canonical spec string or None
        self.deadline = deadline
        self.t_recv = t_recv
        self.future = future


class _Publish:
    """A snapshot hot-swap control item, serialized with request waves."""

    __slots__ = ("snapshot", "done", "error")

    def __init__(self, snapshot):
        self.snapshot = snapshot
        self.done = threading.Event()
        self.error: Optional[BaseException] = None


_STOP = object()


class FrontDoor:
    """Serve a scheduler over TCP with admission control and deadlines.

    Parameters
    ----------
    scheduler:
        A started :class:`~repro.serving.scheduler.MicroBatchScheduler`
        or :class:`~repro.serving.sharded.ShardedScheduler`.  The front
        door becomes its sole driver — nothing else may submit while
        the door is running.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    max_inflight:
        Admission bound: requests admitted but not yet answered.  On
        overflow the request is answered ``rejected`` and the connection
        stops reading until capacity frees (backpressure).
    n_nodes:
        When given, query ids are range-checked at admission so a bad
        request is answered ``error`` instead of reaching (and crashing)
        a worker.  :class:`~repro.serving.sharded.ShardPool` exposes it;
        for a replica pool the CLI passes it from the loaded index.
    default_k:
        ``k`` used by requests that omit it.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  The door
        contributes ``repro_frontdoor_requests_total{outcome=...}``
        counters, a ``repro_frontdoor_inflight`` gauge and the
        ``repro_request_seconds{tier="frontdoor"}`` end-to-end latency
        histogram (synced at scrape time through a collector, like the
        engine's stats).
    wave_delay:
        Test/benchmark hook: sleep this many seconds before serving
        each dispatch wave, simulating a slower backend so overload and
        deadline paths trigger deterministically.  0 in production.
    """

    def __init__(
        self,
        scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 256,
        n_nodes: Optional[int] = None,
        default_k: int = 10,
        registry=None,
        wave_delay: float = 0.0,
    ) -> None:
        if max_inflight < 1:
            raise ServingError(
                f"max_inflight must be positive, got {max_inflight!r}"
            )
        self.scheduler = scheduler
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.n_nodes = None if n_nodes is None else int(n_nodes)
        self.default_k = int(default_k)
        self.wave_delay = float(wave_delay)
        self.metrics = NULL_REGISTRY if registry is None else registry

        self._lock = threading.Lock()
        self._inflight = 0
        self._counts: Dict[str, int] = {"offered": 0}
        self._counts.update({status: 0 for status in STATUSES})
        self._draining = False
        self._failed: Optional[str] = None
        self._idle = threading.Event()  # set whenever inflight hits 0
        self._idle.set()
        self._work_q: "queue_module.Queue" = queue_module.Queue()

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._capacity_event: Optional[asyncio.Event] = None
        self._io_thread: Optional[threading.Thread] = None
        self._dispatch_thread: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self.address: Optional[Tuple[str, int]] = None

        # End-to-end latency: receive-to-response for `ok` answers.
        # Observed only from the dispatch thread, so no locking needed.
        if self.metrics.enabled:
            self.latency = self.metrics.histogram(
                "repro_request_seconds",
                help="frame-receive to response seconds per request",
                labels={"tier": "frontdoor"},
            )
            self._mirrored: Dict[str, int] = dict.fromkeys(self._counts, 0)
            self.metrics.add_collector(self._sync_metrics)
        else:
            self.latency = Histogram(
                'repro_request_seconds{tier="frontdoor"}',
                help="frame-receive to response seconds per request",
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Bind, start the I/O and dispatch threads, return ``(host, port)``."""
        if self._started:
            raise ServingError("front door already started")
        self._started = True
        bound = threading.Event()
        startup_error: List[BaseException] = []
        self._loop = asyncio.new_event_loop()
        self._io_thread = threading.Thread(
            target=self._run_loop,
            args=(bound, startup_error),
            name="frontdoor-io",
            daemon=True,
        )
        self._io_thread.start()
        if not bound.wait(timeout):
            raise ServingError("front door failed to bind within timeout")
        if startup_error:
            raise ServingError(
                f"front door failed to start: {startup_error[0]}"
            ) from startup_error[0]
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, name="frontdoor-dispatch", daemon=True
        )
        self._dispatch_thread.start()
        return self.address

    def _run_loop(self, bound: threading.Event, startup_error: list) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._open_server())
        except Exception as exc:  # bind failure: surface to start()
            startup_error.append(exc)
            bound.set()
            return
        bound.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._close_server())
            self._loop.close()

    async def _open_server(self) -> None:
        self._capacity_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])

    async def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting; wait for every admitted request to complete.

        New requests are answered ``draining`` from the moment this is
        called.  Returns ``True`` when in-flight work hit zero within
        ``timeout`` (``False`` on timeout — the door is still draining).
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._inflight == 0:
                    return True
                self._idle.clear()
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._idle.wait(remaining):
                with self._lock:
                    if self._inflight == 0:
                        return True
                if time.monotonic() >= deadline:
                    return False

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally), stop both threads, close the listener.

        Idempotent.  With ``drain=True`` this is the SIGTERM path: every
        admitted request completes, then the service goes down.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        if drain:
            self.drain(timeout=timeout)
        else:
            with self._lock:
                self._draining = True
        self._work_q.put(_STOP)
        if self._dispatch_thread is not None:
            self._dispatch_thread.join(timeout=timeout)
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._io_thread is not None:
            self._io_thread.join(timeout=timeout)

    def __enter__(self) -> "FrontDoor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Snapshot hot-swap
    # ------------------------------------------------------------------
    def publish(self, snapshot: Snapshot, timeout: float = 60.0) -> None:
        """Hot-swap the pool to ``snapshot`` at the next wave boundary.

        Requests admitted before this call complete on their epoch;
        requests admitted after it are served from the new epoch — the
        scheduler's barrier, preserved across the network layer.
        Blocks until the swap has been applied.
        """
        control = _Publish(snapshot)
        self._work_q.put(control)
        if not control.done.wait(timeout):
            raise ServingError(
                f"snapshot publish did not complete within {timeout:.0f}s"
            )
        if control.error is not None:
            raise control.error

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A consistent copy of the terminal-outcome counters."""
        with self._lock:
            return dict(self._counts)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def reconciled(self) -> bool:
        """True when every offered request has exactly one terminal status."""
        counts = self.counters()
        return counts["offered"] == sum(counts[s] for s in STATUSES)

    def _sync_metrics(self) -> None:
        """Scrape-time collector: mirror internal counters into the registry."""
        counts = self.counters()
        for key, value in counts.items():
            delta = value - self._mirrored[key]
            if delta:
                labels = {} if key == "offered" else {"outcome": key}
                self.metrics.counter(
                    "repro_frontdoor_requests_total"
                    if key != "offered"
                    else "repro_frontdoor_offered_total",
                    help="front-door requests by terminal outcome"
                    if key != "offered"
                    else "query frames received",
                    labels=labels,
                ).inc(delta)
                self._mirrored[key] = value
        self.metrics.gauge(
            "repro_frontdoor_inflight",
            help="requests admitted but not yet answered",
        ).set(self.inflight)

    def _count(self, key: str) -> None:
        with self._lock:
            self._counts[key] += 1

    # ------------------------------------------------------------------
    # I/O thread: connections, framing, admission
    # ------------------------------------------------------------------
    async def _read_frame(self, reader) -> Optional[dict]:
        try:
            header = await reader.readexactly(FRAME_HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        (length,) = FRAME_HEADER.unpack(header)
        if length == 0 or length > MAX_FRAME_BYTES:
            raise ValueError(f"invalid frame length {length}")
        data = await reader.readexactly(length)
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("frame payload must be a JSON object")
        return payload

    async def _write_loop(self, writer, out_q) -> None:
        """Single writer per connection: serializes pipelined responses."""
        while True:
            frame = await out_q.get()
            if frame is None:
                break
            try:
                writer.write(encode_frame(frame))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                break

    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection mid-frame; the
            # task finishes normally so the streams machinery doesn't
            # log a spurious "unhandled" cancellation.
            writer.close()

    async def _serve_connection(self, reader, writer) -> None:
        out_q: asyncio.Queue = asyncio.Queue()
        write_task = asyncio.ensure_future(self._write_loop(writer, out_q))
        pending: set = set()
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except (ValueError, UnicodeDecodeError) as exc:
                    await out_q.put(
                        {"status": "error", "message": f"protocol error: {exc}"}
                    )
                    break
                if frame is None:
                    break
                await self._handle_frame(frame, out_q, pending)
        finally:
            # Pipelined requests still in flight get their responses
            # before the connection closes.
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            await out_q.put(None)
            try:
                await write_task
            except asyncio.CancelledError:  # pragma: no cover - shutdown race
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _handle_frame(self, frame: dict, out_q, pending: set) -> None:
        op = frame.get("op", "query")
        req_id = frame.get("id")
        if op == "ping":
            await out_q.put({"id": req_id, "status": "ok", "pong": True})
            return
        if op == "info":
            with self._lock:
                inflight, draining = self._inflight, self._draining
            await out_q.put(
                {
                    "id": req_id,
                    "status": "ok",
                    "tier": getattr(self.scheduler, "_TIER", "?"),
                    "n_nodes": self.n_nodes,
                    "epoch": self.scheduler.pool.snapshot.epoch,
                    "max_inflight": self.max_inflight,
                    "inflight": inflight,
                    "draining": draining,
                }
            )
            return
        if op != "query":
            await out_q.put(
                {
                    "id": req_id,
                    "status": "error",
                    "message": f"unknown op {op!r}",
                }
            )
            return

        self._count("offered")
        error = self._validate(frame)
        if error is not None:
            self._count("error")
            await out_q.put(
                {"id": req_id, "status": "error", "message": error}
            )
            return
        with self._lock:
            if self._failed is not None:
                status, message = "error", f"service failed: {self._failed}"
            elif self._draining:
                status, message = "draining", None
            elif self._inflight >= self.max_inflight:
                status, message = "rejected", None
            else:
                self._inflight += 1
                self._idle.clear()
                status, message = None, None
        if status is not None:
            self._count(status)
            response = {"id": req_id, "status": status}
            if message is not None:
                response["message"] = message
            await out_q.put(response)
            if status == "rejected":
                # Backpressure: this connection stops reading until an
                # admitted request completes somewhere.
                await self._wait_capacity()
            return

        timeout_ms = frame.get("timeout_ms")
        t_recv = time.perf_counter()
        deadline = (
            None if timeout_ms is None else t_recv + float(timeout_ms) / 1000.0
        )
        request = _Request(
            req_id,
            int(frame["query"]),
            int(frame.get("k", self.default_k)),
            self._precision_spec(frame),
            deadline,
            t_recv,
            self._loop.create_future(),
        )
        self._work_q.put(request)
        task = asyncio.ensure_future(self._await_response(request, out_q))
        pending.add(task)
        task.add_done_callback(pending.discard)

    def _validate(self, frame: dict) -> Optional[str]:
        query = frame.get("query")
        if not isinstance(query, int) or isinstance(query, bool):
            return f"query must be an integer node id, got {query!r}"
        if self.n_nodes is not None and not 0 <= query < self.n_nodes:
            return f"query node {query} out of range [0, {self.n_nodes})"
        k = frame.get("k", self.default_k)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            return f"k must be a positive integer, got {k!r}"
        timeout_ms = frame.get("timeout_ms")
        if timeout_ms is not None and (
            not isinstance(timeout_ms, (int, float))
            or isinstance(timeout_ms, bool)
            or timeout_ms <= 0
        ):
            return f"timeout_ms must be a positive number, got {timeout_ms!r}"
        precision = frame.get("precision")
        eps = frame.get("eps")
        if eps is not None and (
            not isinstance(eps, (int, float))
            or isinstance(eps, bool)
            or not 0.0 < eps < 1.0
        ):
            return f"eps must be a number in (0, 1), got {eps!r}"
        if precision is None:
            if eps is not None:
                return "eps requires a precision field"
            return None
        if not isinstance(precision, str):
            return f"precision must be a string, got {precision!r}"
        if eps is not None and "(" in precision:
            return (
                "give eps inline in precision or as an eps field, not both"
            )
        try:
            self._precision_spec(frame)
        except InvalidParameterError as exc:
            return str(exc)
        return None

    @staticmethod
    def _precision_spec(frame: dict) -> Optional[str]:
        """Canonical precision spec of one validated frame (None = the
        backend's default tier, i.e. the pre-precision request shape)."""
        precision = frame.get("precision")
        if precision is None:
            return None
        eps = frame.get("eps")
        spec = (
            f"{precision}({float(eps)!r})" if eps is not None else precision
        )
        return PrecisionPolicy.parse(spec).spec

    async def _await_response(self, request: _Request, out_q) -> None:
        response = await request.future
        await out_q.put(response)

    async def _wait_capacity(self) -> None:
        while True:
            with self._lock:
                if (
                    self._inflight < self.max_inflight
                    or self._draining
                    or self._failed is not None
                ):
                    return
            self._capacity_event.clear()
            await self._capacity_event.wait()

    def _signal_capacity(self) -> None:
        # Runs on the event loop via call_soon_threadsafe.
        if self._capacity_event is not None:
            self._capacity_event.set()

    # ------------------------------------------------------------------
    # Dispatch thread: waves through the scheduler
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._work_q.get()
            wave = [item]
            while True:
                try:
                    wave.append(self._work_q.get_nowait())
                except queue_module.Empty:
                    break
            stop = False
            submitted: List[Tuple[int, _Request]] = []
            for entry in wave:
                if entry is _STOP:
                    stop = True
                    continue
                if isinstance(entry, _Publish):
                    # Requests admitted before the publish complete on
                    # their epoch first — the barrier contract.
                    self._serve_wave(submitted)
                    submitted = []
                    try:
                        self.scheduler.publish(entry.snapshot)
                    except BaseException as exc:
                        entry.error = exc
                    entry.done.set()
                    continue
                self._submit_request(entry, submitted)
            self._serve_wave(submitted)
            if stop:
                return

    def _submit_request(
        self, request: _Request, submitted: List[Tuple[int, _Request]]
    ) -> None:
        if (
            request.deadline is not None
            and time.perf_counter() >= request.deadline
        ):
            # Expired while queued: dropped before dispatch.
            self._resolve(
                request, {"id": request.req_id, "status": "deadline_exceeded"}
            )
            return
        if self._failed is not None:
            self._resolve(
                request,
                {
                    "id": request.req_id,
                    "status": "error",
                    "message": f"service failed: {self._failed}",
                },
            )
            return
        try:
            seq = self.scheduler.submit(
                request.query, request.k, precision=request.precision
            )
        except Exception as exc:
            self._resolve(
                request,
                {
                    "id": request.req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        submitted.append((seq, request))

    def _serve_wave(self, submitted: List[Tuple[int, _Request]]) -> None:
        if not submitted:
            return
        if self.wave_delay:
            time.sleep(self.wave_delay)
        try:
            self.scheduler.drain()
            results = self.scheduler.take_results([s for s, _ in submitted])
        except ServingError as exc:
            # The pool is gone (worker crash mid-drain).  Every admitted
            # request still gets a terminal response — no hangs.
            with self._lock:
                self._failed = str(exc)
            for _, request in submitted:
                self._resolve(
                    request,
                    {
                        "id": request.req_id,
                        "status": "error",
                        "message": f"service failed: {exc}",
                    },
                )
            return
        epoch = self.scheduler.pool.snapshot.epoch
        now = time.perf_counter()
        for (_, request), result in zip(submitted, results):
            if request.deadline is not None and now >= request.deadline:
                # Completed, but past its SLO: the answer is discarded.
                self._resolve(
                    request,
                    {"id": request.req_id, "status": "deadline_exceeded"},
                )
                continue
            self.latency.observe(now - request.t_recv)
            response = {
                "id": request.req_id,
                "status": "ok",
                "query": request.query,
                "k": request.k,
                "epoch": epoch,
                "items": [
                    [int(node), float(proximity)]
                    for node, proximity in result.items
                ],
            }
            if request.precision is not None:
                # Echo the tier plus the reported error estimate; a
                # default-tier request keeps the pre-precision response
                # shape byte-for-byte.
                response["precision"] = request.precision
                response["error_bound"] = float(
                    getattr(result, "error_bound", 0.0)
                )
            self._resolve(request, response)

    def _resolve(self, request: _Request, response: dict) -> None:
        self._count(response["status"])
        with self._lock:
            self._inflight -= 1
            idle = self._inflight == 0
        if idle:
            self._idle.set()
        try:
            self._loop.call_soon_threadsafe(
                self._set_future, request.future, response
            )
            self._loop.call_soon_threadsafe(self._signal_capacity)
        except RuntimeError:  # pragma: no cover - loop closed mid-shutdown
            pass

    @staticmethod
    def _set_future(future, response: dict) -> None:
        if not future.done():
            future.set_result(response)


class FrontDoorClient:
    """A blocking front-door client speaking the framed-JSON protocol.

    Supports both request/response (:meth:`request`) and pipelined use
    (:meth:`send` N times, :meth:`recv` N times) — the latter is what
    the open-loop load generator and the overload tests drive.  One
    client wraps one TCP connection; it is not thread-safe for
    concurrent senders, but one sender thread and one receiver thread
    (the loadgen split) is safe because send and recv touch disjoint
    socket directions.
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._recv_buffer = b""
        self._next_id = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "FrontDoorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- low level -----------------------------------------------------
    def send(self, payload: dict) -> object:
        """Send one frame; fills in ``id`` if absent and returns it."""
        if "id" not in payload:
            payload = dict(payload)
            payload["id"] = self._next_id
            self._next_id += 1
        self._sock.sendall(encode_frame(payload))
        return payload["id"]

    def _read_exact(self, n: int) -> bytes:
        while len(self._recv_buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServingError(
                    "front-door connection closed mid-response"
                )
            self._recv_buffer += chunk
        data, self._recv_buffer = self._recv_buffer[:n], self._recv_buffer[n:]
        return data

    def recv(self) -> dict:
        """Block for the next response frame."""
        (length,) = FRAME_HEADER.unpack(self._read_exact(FRAME_HEADER.size))
        if length == 0 or length > MAX_FRAME_BYTES:
            raise ServingError(f"invalid response frame length {length}")
        return json.loads(self._read_exact(length).decode("utf-8"))

    # -- high level ----------------------------------------------------
    def query(
        self,
        query: int,
        k: int = 10,
        timeout_ms: Optional[float] = None,
        req_id=None,
        precision: Optional[str] = None,
        eps: Optional[float] = None,
    ) -> dict:
        """One query round-trip; returns the response dict."""
        payload: Dict[str, object] = {"op": "query", "query": int(query), "k": int(k)}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if precision is not None:
            payload["precision"] = precision
        if eps is not None:
            payload["eps"] = float(eps)
        if req_id is not None:
            payload["id"] = req_id
        return self.request(payload)

    def request(self, payload: dict) -> dict:
        self.send(payload)
        return self.recv()

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def info(self) -> dict:
        return self.request({"op": "info"})
