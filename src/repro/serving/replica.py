"""The replica pool: worker processes serving one snapshot each.

One Python process can run exactly one pruned scan at a time — the
kernel is a Python-level loop, so threads share the GIL and a single
``QueryEngine`` caps out far below a multi-core box.  The pool fixes
that the way the paper's deployment model invites: the index is
**read-only at serving time**, so replication is free of coherence
traffic.  Each worker process

1. loads the published snapshot (the v2 archive restores the
   ``PreparedIndex`` caches directly — no re-preparation),
2. wraps it in its own static :class:`~repro.query.engine.QueryEngine`
   (private LRU result cache, private workspace),
3. serves micro-batches from its request queue until told to stop,
4. hot-swaps to a newer snapshot epoch when the scheduler broadcasts
   one — the swap lands *between* batches, so no in-flight query is
   dropped and every query is answered by exactly the snapshot that was
   current when it was scheduled.

The pool is deliberately dumb about ordering: it moves messages.  All
scheduling policy (micro-batch formation, routing, the swap barrier)
lives in :class:`~repro.serving.scheduler.MicroBatchScheduler`.

Wire protocol (tuples, first element is the kind):

===========  =============================================  ===========
direction    message                                        reply
===========  =============================================  ===========
to worker    ``("batch", batch_id, [(query, k), ...])``     ``("results", wid, batch_id, [TopKResult, ...])``
to worker    ``("batch", batch_id, [(query, k, prec), ...])``  same reply shape
to worker    ``("swap", epoch, path)``                      ``("swapped", wid, epoch)``
to worker    ``("stats",)``                                 ``("stats", wid, stats_dict)``
to worker    ``("metrics",)``                               ``("metrics", wid, registry_snapshot)``
to worker    ``("stop",)``                                  ``("stopped", wid, stats_dict)``
===========  =============================================  ===========

Tracing rides the same envelopes: a ``batch`` message may carry a
fourth element — one trace context (or ``None``) per request — and the
worker then answers ``("results", wid, batch_id, results, spans)``
where ``spans`` are finished :func:`~repro.obs.tracing.remote_span`
records (``worker.batch`` plus a ``kernel.scan`` leaf carrying the
batch's scan counters and kernel-backend name).  Untraced batches use
the original 3/4-element shapes, so tracing-off serving is wire-
identical to PR 3.  ``metrics`` returns the worker engine's
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; per-worker latency
histograms share bucket bounds, so the pool folds them with
:meth:`~repro.obs.metrics.MetricsRegistry.merge`.

Precision tiers ride the request tuples: a batch whose requests are
3-tuples carries a per-request precision spec string (``"exact"``,
``"bounded(1e-06)"``, ``"best_effort(0.001)"``, or ``None`` for the
worker engine's default — see :mod:`repro.query.approx`).  A
default-tier stream keeps the original 2-tuple envelope, so
precision-off serving is wire-identical to PR 9.

A worker that hits an unexpected exception reports
``("error", wid, message)`` and exits; the pool surfaces it as a
:class:`~repro.exceptions.ServingError` on the next receive.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import time
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.index_io import load_index
from ..exceptions import InvalidParameterError, ServingError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import remote_span
from ..query.engine import QueryEngine
from .snapshot import Snapshot

#: Default seconds the pool waits on worker replies before declaring
#: the worker dead.  Generous: snapshot loads on large graphs are slow.
DEFAULT_TIMEOUT = 120.0


def _report_worker_crash(result_q, worker_id: int) -> None:
    """Ship the crashing worker's full traceback to the gather side.

    The reply carries ``traceback.format_exc()`` as a plain string —
    always picklable, unlike the exception object itself (a crash whose
    exception can't cross the queue would otherwise be silently
    swallowed and the pool would only see an opaque dead worker).  If
    even the string can't be enqueued (queue torn down mid-crash), the
    traceback goes to the worker's stderr instead of vanishing.
    """
    import sys
    import traceback

    detail = traceback.format_exc()
    try:
        result_q.put(("error", worker_id, detail))
    except Exception:
        print(
            f"[worker {worker_id}] crash report lost to a dead queue:\n{detail}",
            file=sys.stderr,
            flush=True,
        )


def _serve_batch(engine: QueryEngine, requests: Sequence[Tuple]):
    """Serve one micro-batch of ``(query, k[, precision])`` requests,
    input order kept.

    Requests are grouped by ``(k, precision)`` so each group runs
    through one :meth:`~repro.query.engine.QueryEngine.top_k_many` call
    (shared workspace + within-batch dedup); answers are identical to
    per-query ``top_k`` calls, so grouping is purely an execution
    detail.  A 2-tuple request (the pre-precision envelope) means the
    engine's default tier.

    Returns ``(results, group_stats)`` — one
    :class:`~repro.query.stats.QueryStats` per executed group, which is
    what the trace leaf span sums its scan counters from.
    """
    groups: Dict[Tuple[int, Optional[str]], List[int]] = {}
    for i, request in enumerate(requests):
        spec = request[2] if len(request) > 2 else None
        groups.setdefault((int(request[1]), spec), []).append(i)
    results: List = [None] * len(requests)
    group_stats: List = []
    for (k, spec), idxs in groups.items():
        answers = engine.top_k_many(
            [requests[i][0] for i in idxs], k, precision=spec
        )
        for i, answer in zip(idxs, answers):
            results[i] = answer
        group_stats.append(engine.last_stats)
    return results, group_stats


def _batch_spans(
    engine: QueryEngine,
    n_requests: int,
    ctxs,
    group_stats,
    seconds: float,
    span_ids,
) -> List[dict]:
    """The worker half of one traced batch's span tree.

    One ``worker.batch`` span parented to the (first) propagated trace
    context, with a ``kernel.scan`` leaf carrying the batch's summed
    :class:`~repro.query.stats.QueryStats` counters and the resolved
    kernel-backend name — the numbers the acceptance test matches
    bit-for-bit against a single-process engine serving the same
    stream.
    """
    ctx = next(c for c in ctxs if c is not None)
    batch_id_local = next(span_ids)
    scan_id_local = next(span_ids)
    return [
        remote_span(
            ctx,
            batch_id_local,
            "worker.batch",
            seconds,
            tags={"batch_size": n_requests},
        ),
        remote_span(
            ctx,
            scan_id_local,
            "kernel.scan",
            sum(s.seconds for s in group_stats),
            tags={
                "backend": engine.index._prepared.backend,
                "n_queries": sum(s.n_queries for s in group_stats),
                "cache_hits": sum(s.cache_hits for s in group_stats),
                "dedup_hits": sum(s.dedup_hits for s in group_stats),
                "executed": sum(s.executed for s in group_stats),
                "n_visited": sum(s.n_visited for s in group_stats),
                "n_computed": sum(s.n_computed for s in group_stats),
                "n_pruned": sum(s.n_pruned for s in group_stats),
            },
            parent_id=batch_id_local,
        ),
    ]


def worker_main(
    worker_id: int,
    snapshot_path: str,
    snapshot_epoch: int,
    request_q,
    result_q,
    cache_size: int,
) -> None:
    """Entry point of one replica process (module-level for spawn support)."""
    try:
        engine = QueryEngine(
            load_index(snapshot_path),
            cache_size=cache_size,
            registry=MetricsRegistry(),
        )
        engine.snapshot_epoch = int(snapshot_epoch)
        engine.stats.snapshot_epoch = engine.snapshot_epoch
        span_ids = itertools.count(1)  # process-lifetime span ordinals
        result_q.put(("ready", worker_id, int(snapshot_epoch)))
        while True:
            message = request_q.get()
            kind = message[0]
            if kind == "batch":
                batch_id, requests = message[1], message[2]
                ctxs = message[3] if len(message) > 3 else None
                t0 = perf_counter()
                results, group_stats = _serve_batch(engine, requests)
                if ctxs is not None and any(c is not None for c in ctxs):
                    spans = _batch_spans(
                        engine,
                        len(requests),
                        ctxs,
                        group_stats,
                        perf_counter() - t0,
                        span_ids,
                    )
                    result_q.put(
                        ("results", worker_id, batch_id, results, spans)
                    )
                else:
                    result_q.put(("results", worker_id, batch_id, results))
            elif kind == "swap":
                _, epoch, path = message
                # Only move forward: a stale broadcast (scheduler retry,
                # replayed queue) must not roll the replica back.
                if engine.snapshot_epoch is None or epoch > engine.snapshot_epoch:
                    engine.swap_index(load_index(path), source_epoch=epoch)
                result_q.put(("swapped", worker_id, int(epoch)))
            elif kind == "stats":
                result_q.put(("stats", worker_id, engine.stats.as_dict()))
            elif kind == "metrics":
                result_q.put(("metrics", worker_id, engine.metrics.snapshot()))
            elif kind == "stop":
                result_q.put(("stopped", worker_id, engine.stats.as_dict()))
                break
            else:
                result_q.put(
                    ("error", worker_id, f"unknown message kind {kind!r}")
                )
                break
    except Exception:  # surface crashes instead of hanging the pool
        _report_worker_crash(result_q, worker_id)
    finally:
        # Flush the queue feeder thread before the process exits so the
        # final message is never lost.
        result_q.close()
        result_q.join_thread()


class ReplicaPool:
    """N worker processes, each serving the same published snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.serving.snapshot.Snapshot` (or a plain archive
        path, treated as epoch 0) every worker loads at startup.
    n_workers:
        Number of replica processes.
    cache_size:
        Per-worker LRU result-cache capacity (each replica caches
        independently — affinity routing is what makes those private
        caches effective).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"fork"`` on Linux makes startup near-free).
    timeout:
        Seconds to wait on any worker reply before raising
        :class:`~repro.exceptions.ServingError`.

    The pool is a context manager; exiting it stops the workers and
    joins them.
    """

    #: Worker entry point and process-name stem; the sharded pool
    #: (:class:`repro.serving.sharded.ShardPool`) overrides both and
    #: inherits every queue/lifecycle mechanism below unchanged.
    _WORKER_TARGET = staticmethod(worker_main)
    _WORKER_NAME = "kdash-replica"

    def __init__(
        self,
        snapshot,
        n_workers: int,
        cache_size: int = 1024,
        start_method: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be positive, got {n_workers!r}"
            )
        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot(epoch=0, path=str(snapshot))
        self.snapshot = snapshot
        self.timeout = float(timeout)
        self._cache_size = cache_size
        self._ctx = multiprocessing.get_context(start_method)
        self._result_q = self._ctx.Queue()
        self._request_qs = [self._ctx.Queue() for _ in range(n_workers)]
        self._workers = []
        self._closed = False
        for worker_id in range(n_workers):
            process = self._ctx.Process(
                target=type(self)._WORKER_TARGET,
                args=self._worker_args(worker_id),
                name=f"{self._WORKER_NAME}-{worker_id}",
                daemon=True,
            )
            process.start()
            self._workers.append(process)
        ready = 0
        while ready < n_workers:
            message = self.recv()
            if message[0] != "ready":
                raise ServingError(
                    f"worker startup protocol violation: expected 'ready', "
                    f"got {message!r}"
                )
            ready += 1

    def _worker_args(self, worker_id: int) -> tuple:
        """The spawn arguments of one worker process (subclass hook)."""
        return (
            worker_id,
            self.snapshot.path,
            self.snapshot.epoch,
            self._request_qs[worker_id],
            self._result_q,
            self._cache_size,
        )

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def send(self, worker_id: int, message: tuple) -> None:
        """Low-level: enqueue one protocol message to one worker."""
        if self._closed:
            raise ServingError("pool is closed")
        self._request_qs[worker_id].put(message)

    def submit(self, worker_id: int, batch_id: int, requests, ctxs=None) -> None:
        """Dispatch one micro-batch of ``(query, k[, precision])``
        requests to a worker.

        ``ctxs`` (one trace context or ``None`` per request) extends the
        envelope only when at least one request is traced — an untraced
        stream stays wire-identical to the pre-telemetry protocol.
        """
        if ctxs is None:
            self.send(worker_id, ("batch", batch_id, list(requests)))
        else:
            self.send(worker_id, ("batch", batch_id, list(requests), list(ctxs)))

    def broadcast_swap(self, snapshot: Snapshot) -> None:
        """Tell every worker to adopt ``snapshot`` (no barrier — the
        scheduler drains outstanding batches first and awaits the acks)."""
        for worker_id in range(self.n_workers):
            self.send(worker_id, ("swap", snapshot.epoch, snapshot.path))
        self.snapshot = snapshot

    def recv(self, timeout: Optional[float] = None) -> tuple:
        """Next worker reply; raises :class:`ServingError` on worker death,
        protocol errors, or timeout."""
        try:
            message = self._result_q.get(timeout=timeout or self.timeout)
        except queue_module.Empty:
            dead = [p.name for p in self._workers if not p.is_alive()]
            detail = f"; dead workers: {dead}" if dead else ""
            raise ServingError(
                f"no worker reply within {timeout or self.timeout:.0f}s{detail}"
            ) from None
        if message[0] == "error":
            # message[2] is the worker's full traceback (a plain string;
            # see _report_worker_crash) — re-raised here with the worker
            # identity so the gather side sees the original crash site.
            raise ServingError(f"worker {message[1]} failed:\n{message[2]}")
        return message

    def collect_stats(self) -> List[dict]:
        """Per-worker ``EngineStats`` dicts (safe only with no batches
        outstanding — the scheduler guarantees that by draining first)."""
        for worker_id in range(self.n_workers):
            self.send(worker_id, ("stats",))
        stats: List[Optional[dict]] = [None] * self.n_workers
        needed = self.n_workers
        while needed:
            message = self.recv()
            if message[0] != "stats":
                raise ServingError(
                    f"unexpected reply while collecting stats: {message!r}"
                )
            stats[message[1]] = message[2]
            needed -= 1
        return stats  # type: ignore[return-value]

    def collect_metrics(self) -> MetricsRegistry:
        """One registry folding every worker's metrics snapshot.

        Counters add, per-worker latency histograms merge bucket-wise
        (same bounds by construction) — so pool-level p50/p95/p99 come
        out of the merged histograms directly.  Same no-outstanding-
        batches caveat as :meth:`collect_stats`.
        """
        for worker_id in range(self.n_workers):
            self.send(worker_id, ("metrics",))
        merged = MetricsRegistry()
        needed = self.n_workers
        while needed:
            message = self.recv()
            if message[0] != "metrics":
                raise ServingError(
                    f"unexpected reply while collecting metrics: {message!r}"
                )
            merged.merge(MetricsRegistry.from_snapshot(message[2]))
            needed -= 1
        return merged

    # ------------------------------------------------------------------
    def close(self) -> List[dict]:
        """Stop and join every worker; returns their final stats dicts.

        Idempotent: a second close returns an empty list.
        """
        if self._closed:
            return []
        self._closed = True
        final: List[dict] = []
        for request_q in self._request_qs:
            request_q.put(("stop",))
        # One "stopped" per worker; a worker that crashed earlier will
        # never reply, so bail once nobody is alive or the deadline hits.
        deadline = time.monotonic() + self.timeout
        remaining = self.n_workers
        while remaining and time.monotonic() < deadline:
            try:
                message = self._result_q.get(timeout=0.5)
            except queue_module.Empty:
                if not any(p.is_alive() for p in self._workers):
                    break
                continue
            if message[0] == "stopped":
                final.append(message[2])
                remaining -= 1
            # Late batch results / acks during shutdown are dropped.
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        return final

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
