"""The publisher: dynamic updates in, epoch-tagged snapshots out.

The serving tier splits the engine's two roles across processes:

- **replicas** hold read-only snapshots and burn CPU on queries;
- exactly one **publisher** owns the mutable
  :class:`~repro.core.dynamic.DynamicKDash` (wrapped in a
  :class:`~repro.query.engine.QueryEngine` so the
  :class:`~repro.query.engine.RebuildPolicy` machinery applies
  unchanged) and turns update batches into snapshots.

Publication must compact first: a snapshot is the *base* index archive,
and :func:`~repro.core.index_io.save_index` refuses a dynamic wrapper
with pending Woodbury corrections — the corrections live in publisher
memory, not in the archive.  :meth:`SnapshotPublisher.publish` therefore
forces a :meth:`~repro.query.engine.QueryEngine.rebuild` whenever
corrections are pending, then writes the next epoch.  The publisher's
engine remains a fully exact serving surface of its own (it answers
corrected queries between publications), which is what the equivalence
tests compare the pool against.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..exceptions import InvalidParameterError
from ..query.engine import QueryEngine
from .snapshot import Snapshot, SnapshotStore


class SnapshotPublisher:
    """Own the mutable index; publish compacted snapshots per update batch.

    Parameters
    ----------
    engine:
        A :class:`~repro.query.engine.QueryEngine` over a
        :class:`~repro.core.dynamic.DynamicKDash` — the single writer.
        Its rebuild policy (if any) keeps working between publications.
    store:
        The :class:`~repro.serving.snapshot.SnapshotStore` to publish
        into.
    """

    def __init__(self, engine: QueryEngine, store: SnapshotStore) -> None:
        if engine.dynamic is None:
            raise InvalidParameterError(
                "SnapshotPublisher requires a DynamicKDash-backed engine "
                "(the publisher is the writer role)"
            )
        self.engine = engine
        self.store = store

    @property
    def latest(self) -> Snapshot:
        """The most recently published snapshot (publishing epoch 0 on
        first use so a fresh store always has a bootable snapshot)."""
        snapshot = self.store.latest()
        if snapshot is None:
            snapshot = self.publish()
        return snapshot

    def publish(self) -> Snapshot:
        """Compact pending corrections (if any) and write the next epoch."""
        if self.engine.dynamic.n_pending_columns:
            self.engine.rebuild()
        return self.store.publish(self.engine.dynamic)

    def apply_and_publish(
        self,
        inserts: Iterable[tuple] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> Tuple["object", Snapshot]:
        """One update batch through the dynamic path, then one snapshot.

        Returns ``(UpdateReport, Snapshot)``.  The report reflects the
        engine's own policy decisions (a policy-triggered rebuild shows
        up as ``rebuilt=True``); the snapshot always reflects every
        applied update, because :meth:`publish` compacts first.
        """
        report = self.engine.apply_updates(inserts, deletes)
        return report, self.publish()
