"""The publisher: dynamic updates in, epoch-tagged snapshots out.

The serving tier splits the engine's two roles across processes:

- **replicas** hold read-only snapshots and burn CPU on queries;
- exactly one **publisher** owns the mutable
  :class:`~repro.core.dynamic.DynamicKDash` (wrapped in a
  :class:`~repro.query.engine.QueryEngine` so the
  :class:`~repro.query.engine.RebuildPolicy` machinery applies
  unchanged) and turns update batches into snapshots.

Publication must compact first: a snapshot is the *base* index archive,
and :func:`~repro.core.index_io.save_index` refuses a dynamic wrapper
with pending Woodbury corrections — the corrections live in publisher
memory, not in the archive.  :meth:`SnapshotPublisher.publish` therefore
forces a :meth:`~repro.query.engine.QueryEngine.rebuild` whenever
corrections are pending, then writes the next epoch.  The publisher's
engine remains a fully exact serving surface of its own (it answers
corrected queries between publications), which is what the equivalence
tests compare the pool against.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional, Tuple

from ..core.sharded import SHARD_PARTITIONERS, ShardedIndex
from ..exceptions import InvalidParameterError
from ..obs.metrics import NULL_REGISTRY
from ..query.engine import QueryEngine
from ..validation import check_choice, check_positive_int
from .snapshot import Snapshot, SnapshotStore


class SnapshotPublisher:
    """Own the mutable index; publish compacted snapshots per update batch.

    Parameters
    ----------
    engine:
        A :class:`~repro.query.engine.QueryEngine` over a
        :class:`~repro.core.dynamic.DynamicKDash` — the single writer.
        Its rebuild policy (if any) keeps working between publications.
    store:
        The :class:`~repro.serving.snapshot.SnapshotStore` to publish
        into.
    shard_spec:
        ``None`` publishes v2 single-index archives (replica-pool
        deployment).  A ``(n_shards, partitioner)`` or ``(n_shards,
        partitioner, seed)`` tuple publishes format-v3 **sharded**
        snapshots instead: after compaction the base index is re-sliced
        with :meth:`~repro.core.sharded.ShardedIndex.from_index` and the
        manifest-plus-payloads layout is written, ready for a
        :class:`~repro.serving.sharded.ShardPool` to hot-swap.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: publish
        count/latency, updates-applied counters, and the current epoch
        gauge.  ``None`` = telemetry off.
    """

    def __init__(
        self,
        engine: QueryEngine,
        store: SnapshotStore,
        shard_spec: Optional[Tuple] = None,
        registry=None,
    ) -> None:
        if engine.dynamic is None:
            raise InvalidParameterError(
                "SnapshotPublisher requires a DynamicKDash-backed engine "
                "(the publisher is the writer role)"
            )
        self.engine = engine
        self.store = store
        if shard_spec is not None:
            parts = tuple(shard_spec)
            if len(parts) == 2:
                parts = parts + (0,)
            if len(parts) != 3:
                raise InvalidParameterError(
                    "shard_spec must be (n_shards, partitioner[, seed]), "
                    f"got {shard_spec!r}"
                )
            check_positive_int(parts[0], "n_shards")
            check_choice(parts[1], SHARD_PARTITIONERS, "partitioner")
            shard_spec = (int(parts[0]), str(parts[1]), int(parts[2]))
        self.shard_spec = shard_spec
        self.metrics = NULL_REGISTRY if registry is None else registry

    @property
    def latest(self) -> Snapshot:
        """The most recently published snapshot (publishing epoch 0 on
        first use so a fresh store always has a bootable snapshot)."""
        snapshot = self.store.latest()
        if snapshot is None:
            snapshot = self.publish()
        return snapshot

    def publish(self) -> Snapshot:
        """Compact pending corrections (if any) and write the next epoch.

        With a :attr:`shard_spec` the published artefact is a sharded
        manifest re-sliced from the compacted base index; otherwise the
        plain v2 archive.
        """
        t0 = perf_counter()
        if self.engine.dynamic.n_pending_columns:
            self.engine.rebuild()
        if self.shard_spec is not None:
            n_shards, partitioner, seed = self.shard_spec
            sharded = ShardedIndex.from_index(
                self.engine.index, n_shards, partitioner=partitioner, seed=seed
            )
            snapshot = self.store.publish(sharded)
        else:
            snapshot = self.store.publish(self.engine.dynamic)
        if self.metrics.enabled:
            self.metrics.histogram(
                "repro_publish_seconds",
                help="compaction-plus-write seconds per published snapshot",
            ).observe(perf_counter() - t0)
            self.metrics.counter(
                "repro_snapshots_published_total", help="snapshots published"
            ).inc()
            self.metrics.gauge(
                "repro_publisher_epoch", help="latest published snapshot epoch"
            ).set(snapshot.epoch)
        return snapshot

    def apply_and_publish(
        self,
        inserts: Iterable[tuple] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> Tuple["object", Snapshot]:
        """One update batch through the dynamic path, then one snapshot.

        Returns ``(UpdateReport, Snapshot)``.  The report reflects the
        engine's own policy decisions (a policy-triggered rebuild shows
        up as ``rebuilt=True``); the snapshot always reflects every
        applied update, because :meth:`publish` compacts first.
        """
        report = self.engine.apply_updates(inserts, deletes)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_updates_applied_total",
                help="edge updates applied through the publisher",
            ).inc(report.n_inserted + report.n_deleted)
        return report, self.publish()
