"""Epoch-tagged snapshot publication for the serving tier.

A **snapshot** is one immutable, fully-compacted index artefact: either
a v2 single-index archive (which carries the ``PreparedIndex`` caches
so workers skip re-preparation on load) or a v3 **sharded manifest**
plus its per-shard payload files (see :mod:`repro.core.index_io`) —
publishing a :class:`~repro.core.sharded.ShardedIndex` picks the
sharded layout automatically, with the manifest as the atomic commit
point.  A :class:`SnapshotStore` manages a directory of them:

- publication is **atomic**: the archive is written to a temp name and
  ``os.replace``-d into place, then a one-line ``CURRENT`` pointer file
  is swapped the same way — a reader either sees the previous complete
  snapshot or the new complete snapshot, never a torn archive;
- epochs are **monotone**: every publication gets the next integer
  epoch, embedded both in the filename and in ``CURRENT``, so replica
  workers can tell "newer than mine" with an integer compare;
- old epochs are **retained** until :meth:`prune` — workers finishing a
  micro-batch on epoch ``e`` while ``e+1`` is being published must still
  be able to re-open their archive (crash recovery), so the store never
  deletes the current epoch and keeps a configurable tail.

The store is deliberately filesystem-only (no daemon, no locks beyond
rename atomicity): publisher and workers may live in different
processes, containers, or hosts sharing a filesystem.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import List, Optional

from ..core.index_io import load_index, save_index, save_sharded_index
from ..exceptions import SerializationError

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.npz$")
_CURRENT_NAME = "CURRENT"


@dataclass(frozen=True)
class Snapshot:
    """One published index archive: its epoch tag and its path."""

    epoch: int
    path: str

    @property
    def filename(self) -> str:
        return os.path.basename(self.path)


class SnapshotStore:
    """A directory of epoch-tagged index snapshots with a CURRENT pointer.

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    keep:
        When set, :meth:`publish` prunes down to the newest ``keep``
        snapshots after each publication.  ``None`` keeps everything.
    """

    def __init__(self, directory: str, keep: Optional[int] = None) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        if keep is not None and keep < 1:
            raise SerializationError(
                f"keep must retain at least the current snapshot, got {keep!r}"
            )
        self.keep = keep

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, index, epoch: Optional[int] = None) -> Snapshot:
        """Write ``index`` as the next (or given) epoch and point CURRENT at it.

        ``index`` may be a built :class:`~repro.core.kdash.KDash` or a
        compacted :class:`~repro.core.dynamic.DynamicKDash` —
        :func:`~repro.core.index_io.save_index` refuses a dynamic
        wrapper with pending corrections, which is exactly the guarantee
        a snapshot needs (an archive always reflects *all* applied
        updates).
        """
        if epoch is None:
            latest = self.latest()
            epoch = 0 if latest is None else latest.epoch + 1
        else:
            epoch = int(epoch)
            latest = self.latest()
            if latest is not None and epoch <= latest.epoch:
                raise SerializationError(
                    f"snapshot epochs must be monotone: requested {epoch}, "
                    f"current is {latest.epoch}"
                )
        final_path = os.path.join(self.directory, f"snapshot-{epoch:08d}.npz")
        if hasattr(index, "summaries"):
            # A ShardedIndex: save_sharded_index writes the per-shard
            # payload files first and the manifest last, each through an
            # atomic rename — the manifest is the commit point, and the
            # CURRENT pointer (below) only ever names complete manifests.
            save_sharded_index(index, final_path)
        else:
            # savez appends ".npz" when missing, so the temp name keeps
            # the suffix and the swap is a same-directory rename (atomic
            # on POSIX filesystems).
            tmp_path = os.path.join(
                self.directory, f".tmp-{epoch:08d}-{os.getpid()}.npz"
            )
            try:
                save_index(index, tmp_path)
                os.replace(tmp_path, final_path)
            finally:
                if os.path.exists(tmp_path):
                    os.remove(tmp_path)
        self._write_current(epoch, os.path.basename(final_path))
        if self.keep is not None:
            self.prune(self.keep)
        return Snapshot(epoch=epoch, path=final_path)

    def _write_current(self, epoch: int, filename: str) -> None:
        tmp = os.path.join(self.directory, f".{_CURRENT_NAME}.tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            handle.write(f"{epoch} {filename}\n")
        os.replace(tmp, os.path.join(self.directory, _CURRENT_NAME))

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def latest(self) -> Optional[Snapshot]:
        """The snapshot CURRENT points at (falling back to a directory scan).

        The fallback covers a publisher that crashed between the archive
        rename and the pointer swap: the newest complete archive wins.
        """
        current = os.path.join(self.directory, _CURRENT_NAME)
        try:
            with open(current) as handle:
                epoch_str, filename = handle.read().split(None, 1)
            path = os.path.join(self.directory, filename.strip())
            if os.path.exists(path):
                return Snapshot(epoch=int(epoch_str), path=path)
        except (OSError, ValueError):
            pass
        snapshots = self.list_snapshots()
        return snapshots[-1] if snapshots else None

    def list_snapshots(self) -> List[Snapshot]:
        """All complete snapshots in the store, ascending epoch."""
        found = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                found.append(
                    Snapshot(
                        epoch=int(match.group(1)),
                        path=os.path.join(self.directory, name),
                    )
                )
        found.sort(key=lambda s: s.epoch)
        return found

    def load_latest(self):
        """Convenience: load the CURRENT snapshot as a query-ready index."""
        snapshot = self.latest()
        if snapshot is None:
            raise SerializationError(
                f"snapshot store {self.directory!r} holds no snapshots"
            )
        return load_index(snapshot.path)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, keep: int = 2) -> List[Snapshot]:
        """Delete all but the newest ``keep`` snapshots; returns the removed.

        The CURRENT target is never removed, even if ``keep`` would
        demand it.
        """
        if keep < 1:
            raise SerializationError(
                f"prune must retain at least the current snapshot, got {keep!r}"
            )
        snapshots = self.list_snapshots()
        current = self.latest()
        removed = []
        for snapshot in snapshots[:-keep] if keep < len(snapshots) else []:
            if current is not None and snapshot.epoch == current.epoch:
                continue
            os.remove(snapshot.path)
            # A sharded snapshot's per-shard payload files live next to
            # the manifest under "<stem>.shardNNN.npz"; retire them with
            # it so the store never accumulates orphaned payloads.
            self._remove_payloads(os.path.basename(snapshot.path))
            removed.append(snapshot)
        # Sweep payloads whose manifest never landed (a sharded publish
        # killed between payload writes and the manifest rename).  Safe:
        # the manifest is the commit point, so a payload without one is
        # unreachable by any reader — and the single-writer discipline
        # means no publication is mid-flight while its own publish()
        # calls prune().
        live = {os.path.basename(s.path)[:-4] for s in self.list_snapshots()}
        for name in os.listdir(self.directory):
            stem, _, suffix = name.rpartition(".shard")
            if suffix and name.endswith(".npz") and stem and stem not in live:
                os.remove(os.path.join(self.directory, name))
        self._sweep_stale_temps()
        return removed

    def _sweep_stale_temps(self) -> None:
        """Remove temp files orphaned by a publisher crash.

        A publisher killed between writing ``.tmp-<epoch>-<pid>.npz``
        (or ``.CURRENT.tmp.<pid>``, or ``index_io``'s own
        ``<payload>.tmp-<pid>.npz`` staging files) and the
        ``os.replace`` leaves the temp file behind forever — nothing
        ever renames or reads it again.  The same single-writer
        discipline that makes the payload sweep above safe applies: no
        publication is mid-flight while its own ``publish()`` calls
        ``prune()``, so any temp file seen here belongs to a dead
        publisher and is garbage.
        """
        for name in os.listdir(self.directory):
            if (
                name.startswith(".tmp-")
                or name.startswith(f".{_CURRENT_NAME}.tmp.")
                or ".npz.tmp-" in name
            ):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - raced with a cleaner
                    pass

    def _remove_payloads(self, manifest_name: str) -> None:
        stem = manifest_name[:-4]
        for name in os.listdir(self.directory):
            if name.startswith(f"{stem}.shard") and name.endswith(".npz"):
                os.remove(os.path.join(self.directory, name))
