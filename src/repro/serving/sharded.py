"""Distributed scatter-gather: shard-owning workers, a gathering scheduler.

The replica pool (:mod:`repro.serving.replica`) scales *throughput* by
replicating the whole index per worker; this module scales the **index
itself**: each worker process owns one shard of a format-v3 archive —
the manifest's shared seed-side state plus only its own ``U^-1`` row
payload, roughly ``1/n_shards`` of the answer-side index — and queries
run the same home-first / bound-ordered / skip-below-θ plan as the
in-process :class:`~repro.query.planner.ScatterGatherPlanner`, spread
over processes:

1. the scheduler routes each query to its **home shard** worker, which
   scans its members and also contracts every other shard's summary
   bound against the scattered seed column (it holds the manifest, so
   the bounds are one sparse dot each);
2. the gather side sorts the surviving shards by descending bound and
   visits them **one at a time**, micro-batched per worker, carrying
   the running K-th proximity θ as the pruning floor;
3. a shard whose bound falls below θ is **skipped** — and because
   bounds are sorted and θ only grows, every shard after it is skipped
   too.

Exactness contract: per-shard scans compute the identical float dot
products as the single-index kernel and candidates merge through the
same canonical heap discipline, so a stream served by the shard pool is
**bit-identical** to the same stream through one
:class:`~repro.query.engine.QueryEngine` — including across sharded
snapshot hot-swaps, which reuse the barrier semantics of
:meth:`~repro.serving.scheduler.MicroBatchScheduler.publish`.

Wire protocol (extends the replica-pool table):

===========  ====================================================  ===========
direction    message                                               reply
===========  ====================================================  ===========
to worker    ``("home", batch_id, [(query, k), ...])``             ``("partial", wid, batch_id, [(items, bounds, checked, computed), ...])``
to worker    ``("remote", batch_id, [(query, k, floor), ...])``    ``("candidates", wid, batch_id, [(items, checked, computed), ...])``
to worker    ``("swap", epoch, manifest_path)``                    ``("swapped", wid, epoch)``
to worker    ``("stats",)``                                        ``("stats", wid, stats_dict)``
to worker    ``("stop",)``                                         ``("stopped", wid, stats_dict)``
===========  ====================================================  ===========
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.index_io import load_sharded_index
from ..core.sharded import canonical_heap, heap_items, merge_candidates, scan_shard
from ..core.topk import TopKResult
from ..exceptions import InvalidParameterError, ServingError
from ..query.kernel import ScanResult, scan_to_topk
from ..validation import check_k, check_node_id, check_positive_int
from .replica import ReplicaPool
from .snapshot import Snapshot


def _plan_home(sharded, worker_id: int, y, query: int, k: int):
    """One home-phase evaluation inside a shard worker.

    ``scan_shard`` here is the kernel-backend dispatcher: worker
    processes inherit ``REPRO_KERNEL_BACKEND`` from the parent, so one
    environment variable selects the backend for the whole shard pool
    (all backends are bit-identical; see :mod:`repro.query.backends`).
    """
    rows, vals = sharded.scatter_column(y, query)
    ymax = float(vals.max()) if vals.size else 0.0
    heap = canonical_heap(sharded.n, k)
    checked, computed = scan_shard(
        sharded.shard(worker_id), sharded.c, y, ymax, heap
    )
    bounds = sharded.shard_bounds(rows, vals)
    sharded.clear_rows(y, rows)
    return heap_items(heap), bounds, checked, computed


def _plan_remote(sharded, worker_id: int, y, query: int, k: int, floor: float):
    """One remote-phase evaluation: scan own shard with the θ floor."""
    rows, vals = sharded.scatter_column(y, query)
    ymax = float(vals.max()) if vals.size else 0.0
    heap = canonical_heap(sharded.n, k)
    checked, computed = scan_shard(
        sharded.shard(worker_id), sharded.c, y, ymax, heap, floor=floor
    )
    sharded.clear_rows(y, rows)
    return heap_items(heap), checked, computed


def shard_worker_main(
    worker_id: int,
    manifest_path: str,
    snapshot_epoch: int,
    request_q,
    result_q,
    cache_size: int,
) -> None:
    """Entry point of one shard-owning worker process.

    Loads the manifest plus **only its own shard payload**; serves home
    and remote phases until told to stop.  ``cache_size`` is accepted
    for spawn-signature parity with the replica worker and unused —
    partial results are merged at the gather side, so caching whole
    answers belongs there, not here.
    """
    del cache_size  # see docstring
    stats: Dict[str, object] = {
        "worker_id": worker_id,
        "shard_id": worker_id,
        "home_queries": 0,
        "remote_queries": 0,
        "nodes_checked": 0,
        "nodes_computed": 0,
        "snapshot_epoch": int(snapshot_epoch),
        "snapshot_swaps": 0,
    }
    try:
        sharded = load_sharded_index(manifest_path, only=[worker_id])
        y = sharded.workspace()
        result_q.put(("ready", worker_id, int(snapshot_epoch)))
        while True:
            message = request_q.get()
            kind = message[0]
            if kind == "home":
                _, batch_id, requests = message
                replies = []
                for query, k in requests:
                    items, bounds, checked, computed = _plan_home(
                        sharded, worker_id, y, int(query), int(k)
                    )
                    stats["home_queries"] += 1
                    stats["nodes_checked"] += checked
                    stats["nodes_computed"] += computed
                    replies.append((items, bounds, checked, computed))
                result_q.put(("partial", worker_id, batch_id, replies))
            elif kind == "remote":
                _, batch_id, requests = message
                replies = []
                for query, k, floor in requests:
                    items, checked, computed = _plan_remote(
                        sharded, worker_id, y, int(query), int(k), float(floor)
                    )
                    stats["remote_queries"] += 1
                    stats["nodes_checked"] += checked
                    stats["nodes_computed"] += computed
                    replies.append((items, checked, computed))
                result_q.put(("candidates", worker_id, batch_id, replies))
            elif kind == "swap":
                _, epoch, path = message
                if epoch > stats["snapshot_epoch"]:
                    sharded = load_sharded_index(path, only=[worker_id])
                    y = sharded.workspace()
                    stats["snapshot_epoch"] = int(epoch)
                    stats["snapshot_swaps"] += 1
                result_q.put(("swapped", worker_id, int(epoch)))
            elif kind == "stats":
                result_q.put(("stats", worker_id, dict(stats)))
            elif kind == "stop":
                result_q.put(("stopped", worker_id, dict(stats)))
                break
            else:
                result_q.put(
                    ("error", worker_id, f"unknown message kind {kind!r}")
                )
                break
    except Exception as exc:  # surface crashes instead of hanging the pool
        try:
            result_q.put(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        result_q.close()
        result_q.join_thread()


class ShardPool(ReplicaPool):
    """One worker process per shard of a format-v3 sharded snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.serving.snapshot.Snapshot` whose path is a v3
        manifest (or a plain manifest path, treated as epoch 0).  The
        worker count **is** the manifest's shard count — worker ``i``
        owns shard ``i``.
    start_method / timeout:
        As for :class:`~repro.serving.replica.ReplicaPool`.

    The queue scaffolding, error surfacing, swap broadcast and shutdown
    barrier are inherited unchanged; only the worker entry point and the
    manifest-derived metadata differ.
    """

    _WORKER_TARGET = staticmethod(shard_worker_main)
    _WORKER_NAME = "kdash-shard"

    def __init__(
        self,
        snapshot,
        start_method: Optional[str] = None,
        timeout: float = 120.0,
    ) -> None:
        path = snapshot.path if isinstance(snapshot, Snapshot) else str(snapshot)
        self._load_manifest_meta(path)
        super().__init__(
            snapshot,
            n_workers=self.n_shards,
            cache_size=0,
            start_method=start_method,
            timeout=timeout,
        )

    def _load_manifest_meta(self, path: str) -> None:
        """Read the routing metadata every gather side needs."""
        import pickle
        import zipfile

        try:
            manifest = np.load(path, allow_pickle=True)
            version = int(manifest["format_version"])
            if version != 3:
                raise ServingError(
                    f"ShardPool needs a format-v3 sharded manifest; "
                    f"{path!r} has format version {version} (serve v1/v2 "
                    "archives through ReplicaPool, or shard them first)"
                )
            self.n_shards = int(manifest["n_shards"])
            self.n_nodes = int(manifest["n_nodes"])
            self.assignment = np.asarray(manifest["assignment"], dtype=np.int64)
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            pickle.UnpicklingError,
            zipfile.BadZipFile,
        ) as exc:
            raise ServingError(
                f"cannot read sharded manifest {path!r}: {exc}"
            ) from exc

    def home_worker(self, query: int) -> int:
        """The worker owning ``query``'s home shard."""
        return int(self.assignment[query])

    def submit_home(self, worker_id: int, batch_id: int, requests) -> None:
        """Dispatch one home-phase micro-batch of ``(query, k)`` pairs."""
        self.send(worker_id, ("home", batch_id, list(requests)))

    def submit_remote(self, worker_id: int, batch_id: int, requests) -> None:
        """Dispatch one remote-phase micro-batch of ``(query, k, floor)``."""
        self.send(worker_id, ("remote", batch_id, list(requests)))

    def broadcast_swap(self, snapshot: Snapshot) -> None:
        """Adopt a new sharded snapshot: workers reload their shard, the
        gather side reloads the routing metadata (the partition may have
        changed across a re-shard)."""
        self._load_manifest_meta(snapshot.path)
        if self.n_shards != self.n_workers:
            raise ServingError(
                f"snapshot {snapshot.path!r} has {self.n_shards} shards but "
                f"the pool runs {self.n_workers} workers; re-sharding to a "
                "different shard count needs a new pool"
            )
        super().broadcast_swap(snapshot)


class _Gather:
    """Per-query gather state: the canonical heap plus the visit plan."""

    __slots__ = (
        "query",
        "k",
        "heap",
        "order",
        "bounds",
        "cursor",
        "visited",
        "skipped",
        "checked",
        "computed",
    )

    def __init__(self, query: int, k: int, home: int, reply, n: int) -> None:
        items, bounds, checked, computed = reply
        self.query = query
        self.k = k
        self.heap = canonical_heap(n, k)
        merge_candidates(self.heap, items)
        self.bounds = bounds
        self.order = sorted(
            (s for s in range(len(bounds)) if s != home),
            key=lambda s: (-bounds[s], s),
        )
        self.cursor = 0
        self.visited = 1
        self.skipped = 0
        self.checked = checked
        self.computed = computed

    def next_shard(self) -> Optional[int]:
        """The next shard to visit, or ``None`` when the plan is done.

        Skips (and counts) the whole sorted tail as soon as the next
        bound falls below θ — the cross-shard Lemma 2 argument.
        """
        if self.cursor >= len(self.order):
            return None
        theta = self.heap[0][0]
        if self.bounds[self.order[self.cursor]] < theta:
            self.skipped += len(self.order) - self.cursor
            self.cursor = len(self.order)
            return None
        shard = self.order[self.cursor]
        self.cursor += 1
        self.visited += 1
        return shard


class ShardedScheduler:
    """Scatter-gather scheduling over a :class:`ShardPool`.

    Mirrors the :class:`~repro.serving.scheduler.MicroBatchScheduler`
    surface — ``submit`` / ``flush`` / ``drain`` / ``take_results`` /
    ``run`` / ``publish`` / ``collect_stats`` — but requests route by
    **home shard** (the partition is the router) and completing one
    query may take several worker round-trips, each micro-batched per
    worker.  Results come back in submission order, bit-identical to a
    single-process engine serving the same stream.

    Parameters
    ----------
    pool:
        The :class:`ShardPool` to drive.
    batch_size:
        Flush threshold of both the home-phase and remote-phase per-
        worker buffers.
    """

    def __init__(self, pool: ShardPool, batch_size: int = 32) -> None:
        self.pool = pool
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self._home_buffers: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(pool.n_workers)
        ]
        self._remote_buffers: List[List[Tuple[int, int, int, float]]] = [
            [] for _ in range(pool.n_workers)
        ]
        # batch_id -> ("home" | "remote", [seq, ...])
        self._pending: Dict[int, Tuple[str, List[int]]] = {}
        # seq -> (query, k) until the home reply arrives.
        self._inflight: Dict[int, Tuple[int, int]] = {}
        self._gathers: Dict[int, _Gather] = {}
        self._results: Dict[int, TopKResult] = {}
        self._next_seq = 0
        self._next_batch = 0
        #: Queries routed to each home worker (observability).
        self.routed_counts = [0] * pool.n_workers
        #: Lifetime plan accounting (feeds ``skip_rate`` / ``fan_out``).
        self.queries_done = 0
        self.shards_visited = 0
        self.shards_skipped = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: int, k: int = 5) -> int:
        """Route one request to its home shard; returns its sequence number."""
        query = check_node_id(int(query), self.pool.n_nodes, "query")
        k = check_k(int(k))
        seq = self._next_seq
        self._next_seq += 1
        worker_id = self.pool.home_worker(query)
        self.routed_counts[worker_id] += 1
        self._inflight[seq] = (query, k)
        buffer = self._home_buffers[worker_id]
        buffer.append((seq, query, k))
        if len(buffer) >= self.batch_size:
            self._dispatch_home(worker_id)
        return seq

    def _dispatch_home(self, worker_id: int) -> None:
        buffer = self._home_buffers[worker_id]
        if not buffer:
            return
        batch_id = self._next_batch
        self._next_batch += 1
        self._pending[batch_id] = ("home", [seq for seq, _, _ in buffer])
        self.pool.submit_home(worker_id, batch_id, [(q, k) for _, q, k in buffer])
        self._home_buffers[worker_id] = []

    def _dispatch_remote(self, worker_id: int) -> None:
        buffer = self._remote_buffers[worker_id]
        if not buffer:
            return
        batch_id = self._next_batch
        self._next_batch += 1
        self._pending[batch_id] = ("remote", [seq for seq, _, _, _ in buffer])
        self.pool.submit_remote(
            worker_id, batch_id, [(q, k, f) for _, q, k, f in buffer]
        )
        self._remote_buffers[worker_id] = []

    def flush(self) -> None:
        """Dispatch every non-empty buffer, regardless of fill level."""
        for worker_id in range(self.pool.n_workers):
            self._dispatch_home(worker_id)
            self._dispatch_remote(worker_id)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Dispatched batches whose replies have not arrived yet."""
        return len(self._pending)

    def _advance(self, seq: int) -> None:
        """Move one query's plan forward: queue its next shard or finish."""
        gather = self._gathers[seq]
        shard = gather.next_shard()
        if shard is None:
            self._finalise(seq)
            return
        buffer = self._remote_buffers[shard]
        buffer.append((seq, gather.query, gather.k, gather.heap[0][0]))
        if len(buffer) >= self.batch_size:
            self._dispatch_remote(shard)

    def _finalise(self, seq: int) -> None:
        gather = self._gathers.pop(seq)
        n = self.pool.n_nodes
        scan = ScanResult(
            items=heap_items(gather.heap),
            n_visited=gather.checked,
            n_computed=gather.computed,
            n_pruned=n - gather.computed,
            terminated_early=gather.computed < n,
        )
        self._results[seq] = scan_to_topk(gather.query, gather.k, n, scan)
        self.queries_done += 1
        self.shards_visited += gather.visited
        self.shards_skipped += gather.skipped

    def _absorb(self, message: tuple) -> None:
        kind = message[0]
        if kind not in ("partial", "candidates"):
            raise ServingError(
                f"unexpected reply while awaiting plan phases: {message!r}"
            )
        _, _, batch_id, replies = message
        phase, seqs = self._pending.pop(batch_id)
        if len(seqs) != len(replies):
            raise ServingError(
                f"batch {batch_id}: {len(seqs)} requests but "
                f"{len(replies)} replies"
            )
        if phase == "home":
            if kind != "partial":
                raise ServingError(
                    f"home batch {batch_id} answered with {kind!r}"
                )
            for seq, reply in zip(seqs, replies):
                self._gathers[seq] = _Gather(
                    *self._request_of(seq, reply), n=self.pool.n_nodes
                )
                self._advance(seq)
        else:
            if kind != "candidates":
                raise ServingError(
                    f"remote batch {batch_id} answered with {kind!r}"
                )
            for seq, (items, checked, computed) in zip(seqs, replies):
                gather = self._gathers[seq]
                merge_candidates(gather.heap, items)
                gather.checked += checked
                gather.computed += computed
                self._advance(seq)

    def _request_of(self, seq: int, reply):
        """Rebuild the (query, k, home, reply) tuple for a home reply."""
        # The home buffers record (seq, query, k); by the time the reply
        # arrives the buffer entry is gone, so the query/k travel in the
        # pending map instead — reconstructed here from the seq ledger.
        query, k = self._inflight.pop(seq)
        home = self.pool.home_worker(query)
        return query, k, home, reply

    def drain(self) -> None:
        """Flush, then block until every submitted query has finalised."""
        self.flush()
        while self._pending or self._gathers or any(
            self._remote_buffers[w] for w in range(self.pool.n_workers)
        ):
            if not self._pending:
                # Everything in flight is parked in remote buffers below
                # the batch threshold; push it out.
                for worker_id in range(self.pool.n_workers):
                    self._dispatch_remote(worker_id)
                continue
            self._absorb(self.pool.recv())

    def take_results(self, seqs: Sequence[int]) -> List[TopKResult]:
        """Pop completed results for ``seqs`` (drain first)."""
        missing = [s for s in seqs if s not in self._results]
        if missing:
            raise ServingError(
                f"results not yet collected for sequence numbers {missing[:5]}"
                f"{'…' if len(missing) > 5 else ''}; call drain() first"
            )
        return [self._results.pop(s) for s in seqs]

    def run(self, queries: Sequence[int], k: int = 5) -> List[TopKResult]:
        """Serve a query stream end-to-end; results in input order."""
        seqs = [self.submit(q, k) for q in queries]
        self.drain()
        return self.take_results(seqs)

    # ------------------------------------------------------------------
    # Snapshot hot-swap
    # ------------------------------------------------------------------
    def publish(self, snapshot: Snapshot) -> None:
        """Barrier-swap every shard worker to a new sharded snapshot.

        Same semantics as the replica scheduler's publish: in-flight
        plans complete on their scheduled epoch, then every worker acks
        the new manifest before any later query is dispatched.
        """
        if snapshot.epoch <= self.pool.snapshot.epoch:
            raise InvalidParameterError(
                f"snapshot epochs must advance: have "
                f"{self.pool.snapshot.epoch}, got {snapshot.epoch}"
            )
        self.drain()
        self.pool.broadcast_swap(snapshot)
        acks = 0
        while acks < self.pool.n_workers:
            message = self.pool.recv()
            if message[0] != "swapped":
                raise ServingError(
                    f"unexpected reply while awaiting swap acks: {message!r}"
                )
            acks += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def skip_rate(self) -> float:
        """Skipped share of possible non-home shard visits so far."""
        possible = self.queries_done * max(self.pool.n_workers - 1, 0)
        return (self.shards_skipped / possible) if possible else 0.0

    @property
    def mean_fan_out(self) -> float:
        """Average shards scanned per completed query."""
        return (
            (self.shards_visited / self.queries_done)
            if self.queries_done
            else 0.0
        )

    def collect_stats(self) -> List[dict]:
        """Per-worker stats dicts (drains outstanding plans first)."""
        self.drain()
        return self.pool.collect_stats()

    def aggregate_stats(self, per_worker: Sequence[dict]) -> dict:
        """Fold per-worker dicts plus the gather-side plan accounting."""
        total: Dict[str, object] = {
            "workers": len(per_worker),
            "home_queries": 0,
            "remote_queries": 0,
            "nodes_checked": 0,
            "nodes_computed": 0,
            "snapshot_swaps": 0,
        }
        for stats in per_worker:
            for key in (
                "home_queries",
                "remote_queries",
                "nodes_checked",
                "nodes_computed",
                "snapshot_swaps",
            ):
                total[key] += stats[key]
        epochs = [s.get("snapshot_epoch") for s in per_worker]
        total["snapshot_epoch"] = max(
            (e for e in epochs if e is not None), default=None
        )
        total["queries_served"] = self.queries_done
        total["shards_visited"] = self.shards_visited
        total["shards_skipped"] = self.shards_skipped
        total["skip_rate"] = self.skip_rate
        total["mean_fan_out"] = self.mean_fan_out
        return total
