"""Distributed scatter-gather: shard-owning workers, a gathering scheduler.

The replica pool (:mod:`repro.serving.replica`) scales *throughput* by
replicating the whole index per worker; this module scales the **index
itself**: each worker process owns one shard of a format-v3 archive —
the manifest's shared seed-side state plus only its own ``U^-1`` row
payload, roughly ``1/n_shards`` of the answer-side index — and queries
run the same home-first / bound-ordered / skip-below-θ plan as the
in-process :class:`~repro.query.planner.ScatterGatherPlanner`, spread
over processes:

1. the scheduler routes each query to its **home shard** worker, which
   scans its members and also contracts every other shard's summary
   bound against the scattered seed column (it holds the manifest, so
   the bounds are one sparse dot each);
2. the gather side sorts the surviving shards by descending bound and
   visits them **one at a time**, micro-batched per worker, carrying
   the running K-th proximity θ as the pruning floor;
3. a shard whose bound falls below θ is **skipped** — and because
   bounds are sorted and θ only grows, every shard after it is skipped
   too.

Exactness contract: per-shard scans compute the identical float dot
products as the single-index kernel and candidates merge through the
same canonical heap discipline, so a stream served by the shard pool is
**bit-identical** to the same stream through one
:class:`~repro.query.engine.QueryEngine` — including across sharded
snapshot hot-swaps, which reuse the barrier semantics of
:meth:`~repro.serving.scheduler.MicroBatchScheduler.publish`.

Wire protocol (extends the replica-pool table):

===========  ====================================================  ===========
direction    message                                               reply
===========  ====================================================  ===========
to worker    ``("home", batch_id, [(query, k), ...])``             ``("partial", wid, batch_id, [(items, bounds, checked, computed), ...])``
to worker    ``("remote", batch_id, [(query, k, floor), ...])``    ``("candidates", wid, batch_id, [(items, checked, computed), ...])``
to worker    ``("swap", epoch, manifest_path)``                    ``("swapped", wid, epoch)``
to worker    ``("stats",)``                                        ``("stats", wid, stats_dict)``
to worker    ``("metrics",)``                                      ``("metrics", wid, registry_snapshot)``
to worker    ``("stop",)``                                         ``("stopped", wid, stats_dict)``
===========  ====================================================  ===========

As in the replica protocol, ``home``/``remote`` envelopes may carry a
trailing per-request trace-context list; the worker then appends
finished span records (``worker.home``/``worker.remote`` with a
``kernel.scan`` leaf holding the shard id, scan counters and backend
name) as a fifth reply element.  ``metrics`` returns the worker's
per-phase scan-latency registry snapshot for pool-level merging.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.index_io import load_sharded_index
from ..core.sharded import canonical_heap, heap_items, merge_candidates, scan_shard
from ..core.topk import TopKResult
from ..exceptions import InvalidParameterError, ServingError
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.tracing import NULL_TRACER, remote_span
from ..query.approx import PrecisionPolicy
from ..query.kernel import ScanResult, scan_to_topk
from ..validation import check_k, check_node_id, check_positive_int
from .replica import ReplicaPool, _report_worker_crash
from .snapshot import Snapshot


def _plan_home(sharded, worker_id: int, y, query: int, k: int):
    """One home-phase evaluation inside a shard worker.

    ``scan_shard`` here is the kernel-backend dispatcher: worker
    processes inherit ``REPRO_KERNEL_BACKEND`` from the parent, so one
    environment variable selects the backend for the whole shard pool
    (all backends are bit-identical; see :mod:`repro.query.backends`).
    """
    rows, vals = sharded.scatter_column(y, query)
    ymax = float(vals.max()) if vals.size else 0.0
    heap = canonical_heap(sharded.n, k)
    checked, computed = scan_shard(
        sharded.shard(worker_id), sharded.c, y, ymax, heap
    )
    bounds = sharded.shard_bounds(rows, vals)
    sharded.clear_rows(y, rows)
    return heap_items(heap), bounds, checked, computed


def _plan_remote(sharded, worker_id: int, y, query: int, k: int, floor: float):
    """One remote-phase evaluation: scan own shard with the θ floor."""
    rows, vals = sharded.scatter_column(y, query)
    ymax = float(vals.max()) if vals.size else 0.0
    heap = canonical_heap(sharded.n, k)
    checked, computed = scan_shard(
        sharded.shard(worker_id), sharded.c, y, ymax, heap, floor=floor
    )
    sharded.clear_rows(y, rows)
    return heap_items(heap), checked, computed


def shard_worker_main(
    worker_id: int,
    manifest_path: str,
    snapshot_epoch: int,
    request_q,
    result_q,
    cache_size: int,
) -> None:
    """Entry point of one shard-owning worker process.

    Loads the manifest plus **only its own shard payload**; serves home
    and remote phases until told to stop.  ``cache_size`` is accepted
    for spawn-signature parity with the replica worker and unused —
    partial results are merged at the gather side, so caching whole
    answers belongs there, not here.
    """
    del cache_size  # see docstring
    stats: Dict[str, object] = {
        "worker_id": worker_id,
        "shard_id": worker_id,
        "home_queries": 0,
        "remote_queries": 0,
        "nodes_checked": 0,
        "nodes_computed": 0,
        "snapshot_epoch": int(snapshot_epoch),
        "snapshot_swaps": 0,
    }
    try:
        from ..query.backends import resolve_backend_name

        backend_name = resolve_backend_name()
        registry = MetricsRegistry()
        scan_hist = {
            phase: registry.histogram(
                "repro_worker_scan_seconds",
                help="per-request shard-scan seconds",
                labels={"phase": phase},
            )
            for phase in ("home", "remote")
        }
        span_ids = itertools.count(1)  # process-lifetime span ordinals

        def scan_spans(phase, ctx, shard_seconds, checked, computed):
            """worker.<phase> span + kernel.scan leaf for one traced scan."""
            phase_id = next(span_ids)
            leaf_id = next(span_ids)
            return [
                remote_span(
                    ctx,
                    phase_id,
                    f"worker.{phase}",
                    shard_seconds,
                    tags={"shard": worker_id},
                ),
                remote_span(
                    ctx,
                    leaf_id,
                    "kernel.scan",
                    shard_seconds,
                    tags={
                        "backend": backend_name,
                        "shard": worker_id,
                        "n_visited": checked,
                        "n_computed": computed,
                    },
                    parent_id=phase_id,
                ),
            ]

        sharded = load_sharded_index(manifest_path, only=[worker_id])
        y = sharded.workspace()
        result_q.put(("ready", worker_id, int(snapshot_epoch)))
        while True:
            message = request_q.get()
            kind = message[0]
            if kind == "home":
                batch_id, requests = message[1], message[2]
                ctxs = message[3] if len(message) > 3 else None
                replies = []
                spans: List[dict] = []
                for i, (query, k) in enumerate(requests):
                    t0 = perf_counter()
                    items, bounds, checked, computed = _plan_home(
                        sharded, worker_id, y, int(query), int(k)
                    )
                    seconds = perf_counter() - t0
                    stats["home_queries"] += 1
                    stats["nodes_checked"] += checked
                    stats["nodes_computed"] += computed
                    scan_hist["home"].observe(seconds)
                    if ctxs is not None and ctxs[i] is not None:
                        spans.extend(
                            scan_spans("home", ctxs[i], seconds, checked, computed)
                        )
                    replies.append((items, bounds, checked, computed))
                if spans:
                    result_q.put(("partial", worker_id, batch_id, replies, spans))
                else:
                    result_q.put(("partial", worker_id, batch_id, replies))
            elif kind == "remote":
                batch_id, requests = message[1], message[2]
                ctxs = message[3] if len(message) > 3 else None
                replies = []
                spans = []
                for i, (query, k, floor) in enumerate(requests):
                    t0 = perf_counter()
                    items, checked, computed = _plan_remote(
                        sharded, worker_id, y, int(query), int(k), float(floor)
                    )
                    seconds = perf_counter() - t0
                    stats["remote_queries"] += 1
                    stats["nodes_checked"] += checked
                    stats["nodes_computed"] += computed
                    scan_hist["remote"].observe(seconds)
                    if ctxs is not None and ctxs[i] is not None:
                        spans.extend(
                            scan_spans("remote", ctxs[i], seconds, checked, computed)
                        )
                    replies.append((items, checked, computed))
                if spans:
                    result_q.put(("candidates", worker_id, batch_id, replies, spans))
                else:
                    result_q.put(("candidates", worker_id, batch_id, replies))
            elif kind == "swap":
                _, epoch, path = message
                if epoch > stats["snapshot_epoch"]:
                    sharded = load_sharded_index(path, only=[worker_id])
                    y = sharded.workspace()
                    stats["snapshot_epoch"] = int(epoch)
                    stats["snapshot_swaps"] += 1
                result_q.put(("swapped", worker_id, int(epoch)))
            elif kind == "stats":
                result_q.put(("stats", worker_id, dict(stats)))
            elif kind == "metrics":
                result_q.put(("metrics", worker_id, registry.snapshot()))
            elif kind == "stop":
                result_q.put(("stopped", worker_id, dict(stats)))
                break
            else:
                result_q.put(
                    ("error", worker_id, f"unknown message kind {kind!r}")
                )
                break
    except Exception:  # surface crashes instead of hanging the pool
        _report_worker_crash(result_q, worker_id)
    finally:
        result_q.close()
        result_q.join_thread()


class ShardPool(ReplicaPool):
    """One worker process per shard of a format-v3 sharded snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.serving.snapshot.Snapshot` whose path is a v3
        manifest (or a plain manifest path, treated as epoch 0).  The
        worker count **is** the manifest's shard count — worker ``i``
        owns shard ``i``.
    start_method / timeout:
        As for :class:`~repro.serving.replica.ReplicaPool`.

    The queue scaffolding, error surfacing, swap broadcast and shutdown
    barrier are inherited unchanged; only the worker entry point and the
    manifest-derived metadata differ.
    """

    _WORKER_TARGET = staticmethod(shard_worker_main)
    _WORKER_NAME = "kdash-shard"

    def __init__(
        self,
        snapshot,
        start_method: Optional[str] = None,
        timeout: float = 120.0,
    ) -> None:
        path = snapshot.path if isinstance(snapshot, Snapshot) else str(snapshot)
        self._load_manifest_meta(path)
        super().__init__(
            snapshot,
            n_workers=self.n_shards,
            cache_size=0,
            start_method=start_method,
            timeout=timeout,
        )

    def _load_manifest_meta(self, path: str) -> None:
        """Read the routing metadata every gather side needs."""
        import pickle
        import zipfile

        try:
            manifest = np.load(path, allow_pickle=True)
            version = int(manifest["format_version"])
            if version != 3:
                raise ServingError(
                    f"ShardPool needs a format-v3 sharded manifest; "
                    f"{path!r} has format version {version} (serve v1/v2 "
                    "archives through ReplicaPool, or shard them first)"
                )
            self.n_shards = int(manifest["n_shards"])
            self.n_nodes = int(manifest["n_nodes"])
            self.assignment = np.asarray(manifest["assignment"], dtype=np.int64)
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            pickle.UnpicklingError,
            zipfile.BadZipFile,
        ) as exc:
            raise ServingError(
                f"cannot read sharded manifest {path!r}: {exc}"
            ) from exc

    def home_worker(self, query: int) -> int:
        """The worker owning ``query``'s home shard."""
        return int(self.assignment[query])

    def submit_home(self, worker_id: int, batch_id: int, requests, ctxs=None) -> None:
        """Dispatch one home-phase micro-batch of ``(query, k)`` pairs.

        ``ctxs`` optionally carries one trace context (or ``None``) per
        request; untraced batches stay wire-identical to the base
        protocol.
        """
        if ctxs is None:
            self.send(worker_id, ("home", batch_id, list(requests)))
        else:
            self.send(worker_id, ("home", batch_id, list(requests), list(ctxs)))

    def submit_remote(self, worker_id: int, batch_id: int, requests, ctxs=None) -> None:
        """Dispatch one remote-phase micro-batch of ``(query, k, floor)``."""
        if ctxs is None:
            self.send(worker_id, ("remote", batch_id, list(requests)))
        else:
            self.send(worker_id, ("remote", batch_id, list(requests), list(ctxs)))

    def broadcast_swap(self, snapshot: Snapshot) -> None:
        """Adopt a new sharded snapshot: workers reload their shard, the
        gather side reloads the routing metadata (the partition may have
        changed across a re-shard)."""
        self._load_manifest_meta(snapshot.path)
        if self.n_shards != self.n_workers:
            raise ServingError(
                f"snapshot {snapshot.path!r} has {self.n_shards} shards but "
                f"the pool runs {self.n_workers} workers; re-sharding to a "
                "different shard count needs a new pool"
            )
        super().broadcast_swap(snapshot)


class _Gather:
    """Per-query gather state: the canonical heap plus the visit plan."""

    __slots__ = (
        "query",
        "k",
        "heap",
        "order",
        "bounds",
        "cursor",
        "visited",
        "skipped",
        "checked",
        "computed",
    )

    def __init__(self, query: int, k: int, home: int, reply, n: int) -> None:
        items, bounds, checked, computed = reply
        self.query = query
        self.k = k
        self.heap = canonical_heap(n, k)
        merge_candidates(self.heap, items)
        self.bounds = bounds
        self.order = sorted(
            (s for s in range(len(bounds)) if s != home),
            key=lambda s: (-bounds[s], s),
        )
        self.cursor = 0
        self.visited = 1
        self.skipped = 0
        self.checked = checked
        self.computed = computed

    def next_shard(self) -> Optional[int]:
        """The next shard to visit, or ``None`` when the plan is done.

        Skips (and counts) the whole sorted tail as soon as the next
        bound falls below θ — the cross-shard Lemma 2 argument.
        """
        if self.cursor >= len(self.order):
            return None
        theta = self.heap[0][0]
        if self.bounds[self.order[self.cursor]] < theta:
            self.skipped += len(self.order) - self.cursor
            self.cursor = len(self.order)
            return None
        shard = self.order[self.cursor]
        self.cursor += 1
        self.visited += 1
        return shard


class ShardedScheduler:
    """Scatter-gather scheduling over a :class:`ShardPool`.

    Mirrors the :class:`~repro.serving.scheduler.MicroBatchScheduler`
    surface — ``submit`` / ``flush`` / ``drain`` / ``take_results`` /
    ``run`` / ``publish`` / ``collect_stats`` — but requests route by
    **home shard** (the partition is the router) and completing one
    query may take several worker round-trips, each micro-batched per
    worker.  Results come back in submission order, bit-identical to a
    single-process engine serving the same stream.

    Parameters
    ----------
    pool:
        The :class:`ShardPool` to drive.
    batch_size:
        Flush threshold of both the home-phase and remote-phase per-
        worker buffers.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: submit-to-
        finalise latency histogram (``repro_request_seconds`` with
        ``tier="sharded"``) plus plan counters.  ``None`` = telemetry
        off.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`: sampled requests
        get a ``scheduler.query`` root span with one ``scheduler.route``
        child per phase dispatch; worker-side ``worker.home`` /
        ``worker.remote`` / ``kernel.scan`` spans are absorbed from the
        replies.  ``None`` = tracing off (wire-identical envelopes).
    """

    #: Label of this scheduler's request-latency histogram series.
    _TIER = "sharded"

    def __init__(
        self,
        pool: ShardPool,
        batch_size: int = 32,
        registry=None,
        tracer=None,
    ) -> None:
        self.pool = pool
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.metrics = NULL_REGISTRY if registry is None else registry
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Telemetry side tables: submit timestamps and open root spans.
        self._submit_times: Dict[int, float] = {}
        self._spans: Dict[int, object] = {}
        self.latency = self.metrics.histogram(
            "repro_request_seconds",
            help="submit-to-result seconds per request",
            labels={"tier": self._TIER},
        )
        self._home_buffers: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(pool.n_workers)
        ]
        self._remote_buffers: List[List[Tuple[int, int, int, float]]] = [
            [] for _ in range(pool.n_workers)
        ]
        # batch_id -> ("home" | "remote", [seq, ...])
        self._pending: Dict[int, Tuple[str, List[int]]] = {}
        # seq -> (query, k) until the home reply arrives.
        self._inflight: Dict[int, Tuple[int, int]] = {}
        self._gathers: Dict[int, _Gather] = {}
        self._results: Dict[int, TopKResult] = {}
        self._next_seq = 0
        self._next_batch = 0
        #: Queries routed to each home worker (observability).
        self.routed_counts = [0] * pool.n_workers
        #: Lifetime plan accounting (feeds ``skip_rate`` / ``fan_out``).
        self.queries_done = 0
        self.shards_visited = 0
        self.shards_skipped = 0
        #: Non-exact requests served by escalation (no shard worker holds
        #: the full-graph adjacency the CPI fast path multiplies by, so
        #: the sharded tier answers every precision tier exactly and
        #: counts the approximate ones as escalated).
        self.escalated_queries = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: int, k: int = 5, precision=None) -> int:
        """Route one request to its home shard; returns its sequence number.

        ``precision`` is accepted for surface parity with the replica
        scheduler: the plan is exact regardless (see
        :attr:`escalated_queries`), so a ``bounded`` request gets a
        byte-identical exact answer and is counted as escalated, and a
        ``best_effort`` request is promoted to exact — never a looser
        answer than asked for.
        """
        policy = PrecisionPolicy.resolve(precision) if precision is not None else None
        if policy is not None and not policy.is_exact:
            self.escalated_queries += 1
        query = check_node_id(int(query), self.pool.n_nodes, "query")
        k = check_k(int(k))
        seq = self._next_seq
        self._next_seq += 1
        worker_id = self.pool.home_worker(query)
        self.routed_counts[worker_id] += 1
        self._inflight[seq] = (query, k)
        if self.metrics.enabled:
            self._submit_times[seq] = perf_counter()
        if self.tracer.enabled and self.tracer.sample():
            root = self.tracer.start(
                "scheduler.query", tags={"seq": seq, "query": query, "k": k}
            )
            self._spans[seq] = root
        buffer = self._home_buffers[worker_id]
        buffer.append((seq, query, k))
        if len(buffer) >= self.batch_size:
            self._dispatch_home(worker_id)
        return seq

    def _route_span(self, seq: int, phase: str, worker_id: int) -> None:
        """Record one finished scheduler.route child for a traced seq."""
        root = self._spans.get(seq)
        if root is None:
            return
        route = self.tracer.start(
            "scheduler.route",
            parent=root,
            tags={"phase": phase, "worker": worker_id},
        )
        self.tracer.finish(route)

    def _ctxs_for(self, seqs: List[int], phase: str, worker_id: int):
        """Trace contexts for a dispatch (None when nothing is traced)."""
        if not self._spans:
            return None
        traced = []
        any_traced = False
        for seq in seqs:
            span = self._spans.get(seq)
            if span is None:
                traced.append(None)
            else:
                self._route_span(seq, phase, worker_id)
                traced.append(span.context())
                any_traced = True
        return traced if any_traced else None

    def _dispatch_home(self, worker_id: int) -> None:
        buffer = self._home_buffers[worker_id]
        if not buffer:
            return
        batch_id = self._next_batch
        self._next_batch += 1
        seqs = [seq for seq, _, _ in buffer]
        self._pending[batch_id] = ("home", seqs)
        ctxs = self._ctxs_for(seqs, "home", worker_id)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_scheduler_batches_total",
                help="micro-batches dispatched",
                labels={"phase": "home"},
            ).inc()
        self.pool.submit_home(
            worker_id, batch_id, [(q, k) for _, q, k in buffer], ctxs=ctxs
        )
        self._home_buffers[worker_id] = []

    def _dispatch_remote(self, worker_id: int) -> None:
        buffer = self._remote_buffers[worker_id]
        if not buffer:
            return
        batch_id = self._next_batch
        self._next_batch += 1
        seqs = [seq for seq, _, _, _ in buffer]
        self._pending[batch_id] = ("remote", seqs)
        ctxs = self._ctxs_for(seqs, "remote", worker_id)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_scheduler_batches_total",
                help="micro-batches dispatched",
                labels={"phase": "remote"},
            ).inc()
        self.pool.submit_remote(
            worker_id, batch_id, [(q, k, f) for _, q, k, f in buffer], ctxs=ctxs
        )
        self._remote_buffers[worker_id] = []

    def flush(self) -> None:
        """Dispatch every non-empty buffer, regardless of fill level."""
        for worker_id in range(self.pool.n_workers):
            self._dispatch_home(worker_id)
            self._dispatch_remote(worker_id)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Dispatched batches whose replies have not arrived yet."""
        return len(self._pending)

    def _advance(self, seq: int) -> None:
        """Move one query's plan forward: queue its next shard or finish."""
        gather = self._gathers[seq]
        shard = gather.next_shard()
        if shard is None:
            self._finalise(seq)
            return
        buffer = self._remote_buffers[shard]
        buffer.append((seq, gather.query, gather.k, gather.heap[0][0]))
        if len(buffer) >= self.batch_size:
            self._dispatch_remote(shard)

    def _finalise(self, seq: int) -> None:
        gather = self._gathers.pop(seq)
        n = self.pool.n_nodes
        scan = ScanResult(
            items=heap_items(gather.heap),
            n_visited=gather.checked,
            n_computed=gather.computed,
            n_pruned=n - gather.computed,
            terminated_early=gather.computed < n,
        )
        self._results[seq] = scan_to_topk(gather.query, gather.k, n, scan)
        self.queries_done += 1
        self.shards_visited += gather.visited
        self.shards_skipped += gather.skipped
        t_submit = self._submit_times.pop(seq, None)
        if t_submit is not None:
            self.latency.observe(perf_counter() - t_submit)
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_sharded_queries_total", help="queries finalised"
            ).inc()
            self.metrics.counter(
                "repro_sharded_shards_visited_total", help="shards scanned"
            ).inc(gather.visited)
            self.metrics.counter(
                "repro_sharded_shards_skipped_total",
                help="shards skipped by the cross-shard bound",
            ).inc(gather.skipped)
        span = self._spans.pop(seq, None)
        if span is not None:
            self.tracer.finish(
                span,
                tags={
                    "n_visited": gather.checked,
                    "n_computed": gather.computed,
                    "n_pruned": n - gather.computed,
                    "shards_visited": gather.visited,
                    "shards_skipped": gather.skipped,
                },
            )

    def _absorb(self, message: tuple) -> None:
        kind = message[0]
        if kind not in ("partial", "candidates"):
            raise ServingError(
                f"unexpected reply while awaiting plan phases: {message!r}"
            )
        worker_id, batch_id, replies = message[1], message[2], message[3]
        if len(message) > 4:
            self.tracer.absorb(message[4], namespace=worker_id)
        phase, seqs = self._pending.pop(batch_id)
        if len(seqs) != len(replies):
            raise ServingError(
                f"batch {batch_id}: {len(seqs)} requests but "
                f"{len(replies)} replies"
            )
        if phase == "home":
            if kind != "partial":
                raise ServingError(
                    f"home batch {batch_id} answered with {kind!r}"
                )
            for seq, reply in zip(seqs, replies):
                self._gathers[seq] = _Gather(
                    *self._request_of(seq, reply), n=self.pool.n_nodes
                )
                self._advance(seq)
        else:
            if kind != "candidates":
                raise ServingError(
                    f"remote batch {batch_id} answered with {kind!r}"
                )
            for seq, (items, checked, computed) in zip(seqs, replies):
                gather = self._gathers[seq]
                merge_candidates(gather.heap, items)
                gather.checked += checked
                gather.computed += computed
                self._advance(seq)

    def _request_of(self, seq: int, reply):
        """Rebuild the (query, k, home, reply) tuple for a home reply."""
        # The home buffers record (seq, query, k); by the time the reply
        # arrives the buffer entry is gone, so the query/k travel in the
        # pending map instead — reconstructed here from the seq ledger.
        query, k = self._inflight.pop(seq)
        home = self.pool.home_worker(query)
        return query, k, home, reply

    def drain(self) -> None:
        """Flush, then block until every submitted query has finalised."""
        self.flush()
        while self._pending or self._gathers or any(
            self._remote_buffers[w] for w in range(self.pool.n_workers)
        ):
            if not self._pending:
                # Everything in flight is parked in remote buffers below
                # the batch threshold; push it out.
                for worker_id in range(self.pool.n_workers):
                    self._dispatch_remote(worker_id)
                continue
            self._absorb(self.pool.recv())

    def take_results(self, seqs: Sequence[int]) -> List[TopKResult]:
        """Pop completed results for ``seqs`` (drain first)."""
        missing = [s for s in seqs if s not in self._results]
        if missing:
            raise ServingError(
                f"results not yet collected for sequence numbers {missing[:5]}"
                f"{'…' if len(missing) > 5 else ''}; call drain() first"
            )
        return [self._results.pop(s) for s in seqs]

    def run(
        self, queries: Sequence[int], k: int = 5, precision=None
    ) -> List[TopKResult]:
        """Serve a query stream end-to-end; results in input order."""
        seqs = [self.submit(q, k, precision=precision) for q in queries]
        self.drain()
        return self.take_results(seqs)

    # ------------------------------------------------------------------
    # Snapshot hot-swap
    # ------------------------------------------------------------------
    def publish(self, snapshot: Snapshot) -> None:
        """Barrier-swap every shard worker to a new sharded snapshot.

        Same semantics as the replica scheduler's publish: in-flight
        plans complete on their scheduled epoch, then every worker acks
        the new manifest before any later query is dispatched.
        """
        if snapshot.epoch <= self.pool.snapshot.epoch:
            raise InvalidParameterError(
                f"snapshot epochs must advance: have "
                f"{self.pool.snapshot.epoch}, got {snapshot.epoch}"
            )
        self.drain()
        self.pool.broadcast_swap(snapshot)
        acks = 0
        while acks < self.pool.n_workers:
            message = self.pool.recv()
            if message[0] != "swapped":
                raise ServingError(
                    f"unexpected reply while awaiting swap acks: {message!r}"
                )
            acks += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def skip_rate(self) -> float:
        """Skipped share of possible non-home shard visits so far."""
        possible = self.queries_done * max(self.pool.n_workers - 1, 0)
        return (self.shards_skipped / possible) if possible else 0.0

    @property
    def mean_fan_out(self) -> float:
        """Average shards scanned per completed query."""
        return (
            (self.shards_visited / self.queries_done)
            if self.queries_done
            else 0.0
        )

    def collect_stats(self) -> List[dict]:
        """Per-worker stats dicts (drains outstanding plans first)."""
        self.drain()
        return self.pool.collect_stats()

    def aggregate_stats(self, per_worker: Sequence[dict]) -> dict:
        """Fold per-worker dicts plus the gather-side plan accounting."""
        total: Dict[str, object] = {
            "workers": len(per_worker),
            "home_queries": 0,
            "remote_queries": 0,
            "nodes_checked": 0,
            "nodes_computed": 0,
            "snapshot_swaps": 0,
        }
        for stats in per_worker:
            for key in (
                "home_queries",
                "remote_queries",
                "nodes_checked",
                "nodes_computed",
                "snapshot_swaps",
            ):
                total[key] += stats[key]
        epochs = [s.get("snapshot_epoch") for s in per_worker]
        total["snapshot_epoch"] = max(
            (e for e in epochs if e is not None), default=None
        )
        total["queries_served"] = self.queries_done
        total["shards_visited"] = self.shards_visited
        total["shards_skipped"] = self.shards_skipped
        total["skip_rate"] = self.skip_rate
        total["mean_fan_out"] = self.mean_fan_out
        total["fast_path_queries"] = 0
        total["escalated_queries"] = self.escalated_queries
        return total
