"""Small, reusable argument-validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that error messages are uniform and informative.  All helpers
either return the (possibly normalised) value or raise
:class:`~repro.exceptions.InvalidParameterError`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .exceptions import InvalidParameterError


def check_restart_probability(c: float) -> float:
    """Validate the RWR restart probability ``c``; must lie in (0, 1).

    The paper (Section 6) uses ``c = 0.95``; any value in the open interval
    keeps ``W = I - (1-c)A`` strictly column diagonally dominant, which is
    what the LU kernel relies on.
    """
    c = float(c)
    if not (0.0 < c < 1.0):
        raise InvalidParameterError(
            f"restart probability c must be in the open interval (0, 1), got {c!r}"
        )
    return c


def check_k(k: int, n_nodes: Optional[int] = None) -> int:
    """Validate the number of requested answer nodes ``K``.

    ``k`` must be a positive integer.  It may exceed the number of nodes in
    the graph; callers then pad or truncate, as documented on
    :meth:`repro.core.kdash.KDash.top_k`.
    """
    if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
        raise InvalidParameterError(f"K must be an integer, got {type(k).__name__}")
    k = int(k)
    if k <= 0:
        raise InvalidParameterError(f"K must be positive, got {k}")
    if n_nodes is not None and n_nodes < 0:
        raise InvalidParameterError(f"n_nodes must be non-negative, got {n_nodes}")
    return k


def check_node_id(node: int, n_nodes: int, name: str = "node") -> int:
    """Validate a node id against the graph size, returning it as ``int``."""
    if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
        raise InvalidParameterError(
            f"{name} must be an integer node id, got {type(node).__name__}"
        )
    node = int(node)
    if not (0 <= node < n_nodes):
        from .exceptions import NodeNotFoundError

        raise NodeNotFoundError(node, n_nodes)
    return node


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate a non-negative integer parameter."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate a probability-like float in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0) or np.isnan(value):
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_tolerance(tol: float, name: str = "tol") -> float:
    """Validate a convergence tolerance (strictly positive, finite)."""
    tol = float(tol)
    if not (tol > 0.0) or not np.isfinite(tol):
        raise InvalidParameterError(f"{name} must be a positive finite float, got {tol!r}")
    return tol


def check_threshold(threshold: float) -> float:
    """Validate a proximity threshold (strictly positive, finite)."""
    threshold = float(threshold)
    if not (threshold > 0.0) or not np.isfinite(threshold):
        raise InvalidParameterError(
            f"threshold must be a positive finite float, got {threshold!r}"
        )
    return threshold


def check_restart_set(restart, n_nodes: int) -> dict:
    """Validate a ``{node: weight}`` restart set; return normalised shares.

    Every node id must be a valid node of the graph and every weight a
    positive finite float; the returned dict maps node id to its weight
    share (summing to 1).  Used by both the static and the dynamic
    Personalized-PageRank entry points so the two surfaces reject exactly
    the same inputs.
    """
    if not restart:
        raise InvalidParameterError("restart set must not be empty")
    seeds = {}
    for node, weight in dict(restart).items():
        node = check_node_id(node, n_nodes, "restart node")
        weight = float(weight)
        if not (weight > 0.0) or not np.isfinite(weight):
            raise InvalidParameterError(
                f"restart weight for node {node} must be positive, got {weight!r}"
            )
        seeds[node] = weight
    total_weight = sum(seeds.values())
    return {node: weight / total_weight for node, weight in seeds.items()}


def check_choice(value: str, choices: Sequence[str], name: str) -> str:
    """Validate a string option against an allowed set (case-sensitive)."""
    if value not in choices:
        raise InvalidParameterError(
            f"{name} must be one of {sorted(choices)!r}, got {value!r}"
        )
    return value


def check_random_state(seed) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged) so that every stochastic component of
    the library is reproducible from a single integer.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise InvalidParameterError(
            f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
        )
    return np.random.default_rng(int(seed))
