"""The :class:`Partition` value object: a node-to-community assignment.

Partitions returned by Louvain are *normalised*: community ids are
contiguous ``0..k-1``, assigned in order of first appearance by node id,
so equal clusterings compare equal regardless of label history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..exceptions import InvalidParameterError


class Partition:
    """An assignment of ``n`` nodes to ``k`` communities.

    Parameters
    ----------
    assignment:
        Sequence of length ``n``; ``assignment[u]`` is the community of
        node ``u``.  Labels may be arbitrary integers; they are renumbered
        to ``0..k-1`` in order of first appearance.
    """

    __slots__ = ("_assignment", "_k")

    def __init__(self, assignment: Sequence[int]) -> None:
        raw = np.asarray(assignment, dtype=np.int64)
        if raw.ndim != 1:
            raise InvalidParameterError("assignment must be one-dimensional")
        remap: Dict[int, int] = {}
        normalized = np.empty_like(raw)
        for i, label in enumerate(raw):
            label = int(label)
            if label not in remap:
                remap[label] = len(remap)
            normalized[i] = remap[label]
        self._assignment = normalized
        self._k = len(remap)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes assigned."""
        return int(self._assignment.size)

    @property
    def n_communities(self) -> int:
        """Number of distinct communities, the paper's κ."""
        return self._k

    @property
    def assignment(self) -> np.ndarray:
        """The normalised assignment vector (read-only view)."""
        view = self._assignment.view()
        view.setflags(write=False)
        return view

    def community_of(self, node: int) -> int:
        """Community id of ``node``."""
        return int(self._assignment[node])

    def members(self, community: int) -> np.ndarray:
        """Sorted node ids inside ``community``."""
        if not (0 <= community < self._k):
            raise InvalidParameterError(
                f"community {community} out of range (k={self._k})"
            )
        return np.flatnonzero(self._assignment == community)

    def communities(self) -> List[np.ndarray]:
        """All communities as a list of sorted member arrays."""
        return [self.members(c) for c in range(self._k)]

    def sizes(self) -> np.ndarray:
        """Community sizes indexed by community id."""
        return np.bincount(self._assignment, minlength=self._k)

    # ------------------------------------------------------------------
    @classmethod
    def singletons(cls, n: int) -> "Partition":
        """Every node in its own community (Louvain's starting point)."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_communities(cls, communities: Iterable[Iterable[int]], n: int) -> "Partition":
        """Build from an explicit list of communities covering ``0..n-1``."""
        assignment = np.full(n, -1, dtype=np.int64)
        for cid, members in enumerate(communities):
            for u in members:
                u = int(u)
                if not (0 <= u < n):
                    raise InvalidParameterError(f"node {u} out of range for n={n}")
                if assignment[u] != -1:
                    raise InvalidParameterError(f"node {u} assigned twice")
                assignment[u] = cid
        if np.any(assignment == -1):
            missing = int(np.flatnonzero(assignment == -1)[0])
            raise InvalidParameterError(f"node {missing} not assigned to any community")
        return cls(assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._assignment, other._assignment)

    def __hash__(self) -> int:
        return hash(self._assignment.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(n_nodes={self.n_nodes}, n_communities={self._k})"
