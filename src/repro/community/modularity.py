"""Newman–Girvan modularity for weighted undirected graphs.

Modularity is the quality function Louvain optimises (the paper cites it
as "the fitness of node partitioning, in the sense that there are many
edges within a partition and only a few between them").  For a weighted
undirected graph with total edge weight :math:`W_{tot}` (each undirected
edge counted once),

.. math::

    Q = \\frac{1}{2 W_{tot}} \\sum_{uv} \\left( w_{uv}
        - \\frac{s_u s_v}{2 W_{tot}} \\right) \\delta(c_u, c_v)

where :math:`s_u` is the weighted degree (strength) of node ``u`` and the
sum runs over ordered pairs.  Directed input graphs are symmetrised first
(:meth:`DiGraph.to_undirected_weights`), matching how the paper applies
Louvain to its directed datasets.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..exceptions import GraphError
from ..graph.digraph import DiGraph
from .partition import Partition


def undirected_view(graph: DiGraph) -> Tuple[Dict[Tuple[int, int], float], np.ndarray, float]:
    """Symmetrise a digraph for modularity computations.

    Returns
    -------
    (weights, strength, total):
        ``weights`` maps each undirected pair ``(min,max)`` to its summed
        weight; ``strength[u]`` is the weighted degree of ``u`` counting
        self-loops twice (standard convention); ``total`` is the sum of
        undirected edge weights (self-loops counted once).
    """
    weights = graph.to_undirected_weights()
    strength = np.zeros(graph.n_nodes, dtype=np.float64)
    total = 0.0
    for (u, v), w in weights.items():
        total += w
        if u == v:
            strength[u] += 2.0 * w
        else:
            strength[u] += w
            strength[v] += w
    return weights, strength, total


def modularity(graph: DiGraph, partition: Partition) -> float:
    """Modularity ``Q`` of a partition of (the symmetrised view of) a graph.

    Returns 0.0 for edgeless graphs (the conventional degenerate value).

    Examples
    --------
    Two disconnected triangles split into their natural communities have
    modularity 0.5:

    >>> from repro.graph import DiGraph
    >>> g = DiGraph(6)
    >>> for a, b in [(0,1),(1,2),(2,0),(3,4),(4,5),(5,3)]:
    ...     g.add_edge(a, b); g.add_edge(b, a)
    >>> round(modularity(g, Partition([0,0,0,1,1,1])), 6)
    0.5
    """
    if partition.n_nodes != graph.n_nodes:
        raise GraphError(
            f"partition covers {partition.n_nodes} nodes, graph has {graph.n_nodes}"
        )
    weights, strength, total = undirected_view(graph)
    if total <= 0.0:
        return 0.0
    assignment = partition.assignment
    intra = 0.0
    for (u, v), w in weights.items():
        if assignment[u] == assignment[v]:
            # Each undirected edge contributes w_uv to the (u,v) and (v,u)
            # terms of the ordered-pair sum, i.e. 2w in the numerator of
            # Q's first term; self-loops contribute once.
            intra += w if u == v else 2.0 * w
    two_w = 2.0 * total
    q = intra / two_w
    community_strength = np.zeros(partition.n_communities, dtype=np.float64)
    np.add.at(community_strength, assignment, strength)
    q -= float(np.sum((community_strength / two_w) ** 2))
    return q


def modularity_gain(
    node_strength: float,
    community_strength: float,
    weight_to_community: float,
    total_weight: float,
) -> float:
    """Gain in modularity from moving an isolated node into a community.

    This is the incremental formula at the core of Louvain's local phase:
    for node ``u`` (strength :math:`s_u`) currently in no community, the
    gain of joining community ``C`` where ``w_{u,C}`` is the weight of
    edges from ``u`` into ``C`` and :math:`S_C` the strength sum of ``C``:

    .. math:: \\Delta Q = \\frac{w_{u,C}}{W_{tot}}
              - \\frac{s_u S_C}{2 W_{tot}^2}

    (a constant offset independent of ``C`` is dropped — only the argmax
    over communities matters).
    """
    if total_weight <= 0.0:
        return 0.0
    return weight_to_community / total_weight - (
        node_strength * community_strength
    ) / (2.0 * total_weight * total_weight)
