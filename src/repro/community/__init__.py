"""Community detection substrate: the Louvain method, from scratch.

The paper's *cluster reordering* (Section 4.2.2, Algorithm 2) "divides the
given graph into κ partitions by Louvain Method [Blondel et al. 2008]"
and relies on its two properties: the number of partitions κ is chosen
automatically, and modularity optimisation minimises cross-partition
edges.  The B_LIN baseline also needs a partitioner (the original uses
METIS; see DESIGN.md for the substitution note).

:mod:`repro.community.modularity` defines the quality function,
:mod:`repro.community.louvain` the two-phase optimisation, and
:mod:`repro.community.partition` the :class:`Partition` value object the
reordering code consumes.
"""

from .louvain import louvain_communities
from .modularity import modularity
from .partition import Partition

__all__ = ["louvain_communities", "modularity", "Partition"]
