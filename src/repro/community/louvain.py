"""The Louvain method (Blondel et al. 2008), implemented from scratch.

Two alternating phases, exactly as in the original paper the K-dash
authors cite:

1. **Local moving** — repeatedly sweep the nodes in a (seeded) random
   order; each node greedily moves to the neighbouring community with the
   largest positive modularity gain, until a full sweep produces no move.
2. **Aggregation** — collapse each community into a super-node (intra
   edges become self-loops, inter edges sum) and recurse on the smaller
   graph.

The recursion stops when aggregation no longer reduces the node count or
the total modularity gain of a level falls below ``min_gain``.  The number
of communities κ therefore emerges automatically — the property the
paper's cluster reordering relies on ("κ is automatically determined by
Louvain Method").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.digraph import DiGraph
from ..validation import check_random_state, check_tolerance
from .modularity import undirected_view
from .partition import Partition


class _WeightedUndirected:
    """Compact undirected weighted graph used internally by Louvain.

    Stores per-node neighbour dictionaries plus node strengths; supports
    the aggregation step without round-tripping through :class:`DiGraph`.
    """

    __slots__ = ("n", "neighbors", "self_loops", "strength", "total_weight")

    def __init__(self, n: int) -> None:
        self.n = n
        self.neighbors: List[Dict[int, float]] = [dict() for _ in range(n)]
        self.self_loops = np.zeros(n, dtype=np.float64)
        self.strength = np.zeros(n, dtype=np.float64)
        self.total_weight = 0.0

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "_WeightedUndirected":
        weights, strength, total = undirected_view(graph)
        g = cls(graph.n_nodes)
        for (u, v), w in weights.items():
            if u == v:
                g.self_loops[u] += w
            else:
                g.neighbors[u][v] = g.neighbors[u].get(v, 0.0) + w
                g.neighbors[v][u] = g.neighbors[v].get(u, 0.0) + w
        g.strength = strength
        g.total_weight = total
        return g

    def aggregate(self, assignment: np.ndarray, k: int) -> "_WeightedUndirected":
        """Collapse communities into super-nodes."""
        agg = _WeightedUndirected(k)
        for u in range(self.n):
            cu = int(assignment[u])
            agg.self_loops[cu] += self.self_loops[u]
            for v, w in self.neighbors[u].items():
                if v < u:
                    continue  # each undirected edge once
                cv = int(assignment[v])
                if cu == cv:
                    agg.self_loops[cu] += w
                else:
                    agg.neighbors[cu][cv] = agg.neighbors[cu].get(cv, 0.0) + w
                    agg.neighbors[cv][cu] = agg.neighbors[cv].get(cu, 0.0) + w
        for u in range(k):
            agg.strength[u] = 2.0 * agg.self_loops[u] + sum(agg.neighbors[u].values())
        agg.total_weight = self.total_weight
        return agg


def _local_moving(
    graph: _WeightedUndirected, rng: np.random.Generator, min_gain: float
) -> Tuple[np.ndarray, bool]:
    """Phase 1: greedy node moves until a full sweep yields no improvement.

    Returns ``(assignment, improved)`` where ``improved`` reports whether
    any move happened at all.
    """
    n = graph.n
    assignment = np.arange(n, dtype=np.int64)
    community_strength = graph.strength.copy()
    two_w = 2.0 * graph.total_weight
    if two_w <= 0.0:
        return assignment, False
    improved = False
    moved = True
    sweeps = 0
    max_sweeps = 100  # safety valve; Louvain converges in far fewer
    order = np.arange(n)
    while moved and sweeps < max_sweeps:
        moved = False
        sweeps += 1
        rng.shuffle(order)
        for u in order:
            u = int(u)
            cu = int(assignment[u])
            su = graph.strength[u]
            # Weight from u to each neighbouring community.
            weight_to: Dict[int, float] = {}
            for v, w in graph.neighbors[u].items():
                weight_to[int(assignment[v])] = (
                    weight_to.get(int(assignment[v]), 0.0) + w
                )
            # Remove u from its community for the gain comparison.
            community_strength[cu] -= su
            w_cu = weight_to.get(cu, 0.0)
            base = w_cu / graph.total_weight - (
                su * community_strength[cu]
            ) / (two_w * graph.total_weight)
            best_c, best_gain = cu, base
            for c, w_c in weight_to.items():
                if c == cu:
                    continue
                gain = w_c / graph.total_weight - (
                    su * community_strength[c]
                ) / (two_w * graph.total_weight)
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_c = c
            assignment[u] = best_c
            community_strength[best_c] += su
            if best_c != cu:
                moved = True
                improved = True
    return assignment, improved


def louvain_communities(
    graph: DiGraph,
    seed=0,
    min_gain: float = 1e-12,
    max_levels: int = 32,
) -> Partition:
    """Run the full Louvain method on (the symmetrised view of) a graph.

    Parameters
    ----------
    graph:
        Input digraph; symmetrised for modularity purposes.
    seed:
        Seed for the node sweep order — makes results reproducible.  The
        default ``0`` gives deterministic behaviour across runs, which
        the reordering tests rely on.
    min_gain:
        Minimum modularity gain for a node move to be accepted.
    max_levels:
        Cap on aggregation levels (safety valve).

    Returns
    -------
    Partition
        Final communities on the *original* nodes.  Graphs with no edges
        return the singleton partition.

    Notes
    -----
    For all five synthetic datasets Louvain finishes in well under a
    second at default scale — mirroring the paper's footnote 5 ("for all
    data in our experiments, Louvain Method can compute partitions in a
    few seconds").
    """
    min_gain = check_tolerance(min_gain, "min_gain")
    rng = check_random_state(seed)
    n = graph.n_nodes
    if n == 0:
        return Partition([])
    working = _WeightedUndirected.from_digraph(graph)
    # node_map[u] = community of original node u at the current level
    node_map = np.arange(n, dtype=np.int64)
    for _ in range(max_levels):
        assignment, improved = _local_moving(working, rng, min_gain)
        if not improved:
            break
        # Renumber communities compactly.
        compact = Partition(assignment)
        assignment = compact.assignment
        k = compact.n_communities
        node_map = assignment[node_map]
        if k == working.n:
            break
        working = working.aggregate(assignment, k)
    return Partition(node_map)
