"""repro — a faithful reproduction of K-dash (Fujiwara et al., VLDB 2012).

Fast and exact top-k search for random walk with restart proximity:

>>> from repro import KDash
>>> from repro.datasets import load_dataset
>>> graph = load_dataset("Dictionary").graph
>>> index = KDash(graph, c=0.95).build()          # one-time precomputation
>>> result = index.top_k(query=0, k=5)            # exact, heavily pruned
>>> len(result.nodes)
5

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the K-dash index (the paper's contribution);
- :mod:`repro.graph` — graph substrate, generators, transition matrices;
- :mod:`repro.sparse` — from-scratch sparse kernel + triangular solves;
- :mod:`repro.community` — Louvain method (cluster/hybrid reordering);
- :mod:`repro.ordering` — degree / cluster / hybrid / random reorderings;
- :mod:`repro.lu` — Crout LU + sparse triangular inverses;
- :mod:`repro.rwr` — ground-truth RWR (power iteration, direct solve);
- :mod:`repro.baselines` — NB_LIN, B_LIN, Basic Push, local RWR, iterative;
- :mod:`repro.datasets` — the five paper-analog synthetic datasets;
- :mod:`repro.eval` — metrics, timing, and one experiment per figure.
"""

from .baselines import BasicPushAlgorithm, BLin, IterativeRWR, LocalRWR, NBLin
from .core import (
    DynamicKDash,
    KDash,
    ShardedIndex,
    TopKResult,
    UpdateReport,
    load_index,
    load_sharded_index,
    save_index,
    save_sharded_index,
)
from .exceptions import (
    ConvergenceError,
    DecompositionError,
    GraphError,
    IndexNotBuiltError,
    InvalidParameterError,
    NodeNotFoundError,
    ReproError,
    SerializationError,
    SparseMatrixError,
)
from .graph import DiGraph
from .query import QueryEngine, QueryStats, RebuildPolicy, ScatterGatherPlanner
from .rwr import direct_solve_rwr, power_iteration_rwr, top_k_from_vector

__version__ = "1.0.0"

__all__ = [
    "KDash",
    "DynamicKDash",
    "UpdateReport",
    "QueryEngine",
    "QueryStats",
    "RebuildPolicy",
    "ShardedIndex",
    "ScatterGatherPlanner",
    "TopKResult",
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_sharded_index",
    "DiGraph",
    "NBLin",
    "BLin",
    "BasicPushAlgorithm",
    "LocalRWR",
    "IterativeRWR",
    "power_iteration_rwr",
    "direct_solve_rwr",
    "top_k_from_vector",
    "ReproError",
    "InvalidParameterError",
    "GraphError",
    "NodeNotFoundError",
    "SparseMatrixError",
    "DecompositionError",
    "ConvergenceError",
    "IndexNotBuiltError",
    "SerializationError",
    "__version__",
]
