"""Node reordering heuristics for sparse triangular inverses.

Finding the node order that minimises nonzeros in ``L^-1`` / ``U^-1`` is
NP-complete (Theorem 1 of the paper, by reduction from minimum fill-in),
so Section 4.2.2 proposes three heuristics, implemented here exactly as
Algorithms 1–3:

- :class:`~repro.ordering.degree.DegreeReordering` — ascending total
  degree (low-degree nodes to the upper-left of ``A``);
- :class:`~repro.ordering.cluster.ClusterReordering` — Louvain partitions
  with a border partition κ+1 collecting every node that has
  cross-partition edges (doubly-bordered block-diagonal form, Figure 1-2);
- :class:`~repro.ordering.hybrid.HybridReordering` — cluster first, then
  degree-ascending inside each partition (the paper's default);
- :class:`~repro.ordering.random_order.RandomReordering` — the control
  used by Figures 5 and 6.

All strategies return a :class:`~repro.ordering.permutation.Permutation`
mapping original ids to positions in the reordered matrix.
"""

from .base import ReorderingStrategy, get_reordering
from .cluster import ClusterReordering
from .degree import DegreeReordering
from .hybrid import HybridReordering
from .identity import IdentityReordering
from .permutation import Permutation
from .random_order import RandomReordering
from .rcm import RCMReordering

__all__ = [
    "ReorderingStrategy",
    "get_reordering",
    "Permutation",
    "DegreeReordering",
    "ClusterReordering",
    "HybridReordering",
    "RandomReordering",
    "IdentityReordering",
    "RCMReordering",
]
