"""Degree reordering (Algorithm 1 of the paper).

Nodes are arranged in ascending order of total degree — "low degree nodes
have few edges, and the upper/left elements of corresponding matrix A are
expected to be 0".  Pushing hubs to the lower-right confines the dense
rows/columns to the tail of the factorisation where they cause the least
fill-in (the same intuition as the classical minimum-degree heuristic).
Ties break by node id, making the permutation deterministic.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from .base import ReorderingStrategy
from .permutation import Permutation


class DegreeReordering(ReorderingStrategy):
    """Arrange nodes by ascending total degree (in + out)."""

    name = "degree"

    def compute(self, graph: DiGraph) -> Permutation:
        degrees = graph.degree_array()
        # Stable sort on degree; node id breaks ties deterministically.
        order = np.argsort(degrees, kind="stable")
        return Permutation.from_order(order)
