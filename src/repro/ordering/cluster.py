"""Cluster reordering (Algorithm 2 of the paper).

1. Partition the graph into κ communities with the Louvain method.
2. Create an empty border partition ``κ+1``.
3. Move every node that has an edge crossing into a *different* partition
   to the border partition.
4. Arrange nodes partition by partition, border last.

The reordered matrix ``A'`` becomes doubly-bordered block diagonal
(Figure 1-(2) / footnote 4): for any pair of nodes left in distinct
non-border partitions there is no edge, so the off-diagonal blocks outside
the border strip are exactly zero.  That structure confines LU fill-in to
the diagonal blocks and the border rows/columns.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..community import Partition, louvain_communities
from ..graph.digraph import DiGraph
from .base import ReorderingStrategy
from .permutation import Permutation


def border_partition(graph: DiGraph, partition: Partition) -> np.ndarray:
    """Reassign cross-partition nodes to a new border partition.

    Returns an assignment vector over ``0..κ`` where κ (the largest
    label) is the border: a node lands there iff it has an in- or
    out-edge to a node of a different original community (Algorithm 2
    lines 3–6).  Nodes keep their Louvain community id otherwise.
    """
    assignment = partition.assignment.copy()
    border_id = partition.n_communities  # the "κ+1-th partition"
    crosses = np.zeros(graph.n_nodes, dtype=bool)
    for u, v, _ in graph.edges():
        if assignment[u] != assignment[v]:
            crosses[u] = True
            crosses[v] = True
    assignment[crosses] = border_id
    return assignment


class ClusterReordering(ReorderingStrategy):
    """Louvain partitions + border partition, arranged block by block.

    Parameters
    ----------
    seed:
        Seed forwarded to the Louvain sweep order (default 0 for
        reproducibility).
    """

    name = "cluster"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def compute(self, graph: DiGraph) -> Permutation:
        perm, _ = self.compute_with_partition(graph)
        return perm

    def compute_with_partition(self, graph: DiGraph) -> Tuple[Permutation, np.ndarray]:
        """Like :meth:`compute` but also returns the final assignment
        vector (with border id = max label), which the hybrid reordering
        and the B_LIN baseline reuse."""
        n = graph.n_nodes
        if n == 0:
            return Permutation.identity(0), np.zeros(0, dtype=np.int64)
        louvain = louvain_communities(graph, seed=self.seed)
        assignment = border_partition(graph, louvain)
        # Stable sort by partition id: nodes of partition 0 first, border
        # (largest id) last; within a partition, original id order.
        order = np.argsort(assignment, kind="stable")
        return Permutation.from_order(order), assignment
