"""Random reordering — the control baseline of Figures 5 and 6.

The paper compares its three heuristics against "the results achieved
when nodes are arranged in random order"; the gap (up to four orders of
magnitude in nonzeros) is the evidence that reordering matters.
"""

from __future__ import annotations

from ..graph.digraph import DiGraph
from ..validation import check_random_state
from .base import ReorderingStrategy
from .permutation import Permutation


class RandomReordering(ReorderingStrategy):
    """Uniformly random permutation of the nodes.

    Parameters
    ----------
    seed:
        Seed for reproducibility (default 0).
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def compute(self, graph: DiGraph) -> Permutation:
        rng = check_random_state(self.seed)
        return Permutation.from_order(rng.permutation(graph.n_nodes))
