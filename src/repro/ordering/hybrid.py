"""Hybrid reordering (Algorithm 3 of the paper) — K-dash's default.

Combines the two heuristics: nodes are grouped by cluster reordering
(Louvain partitions + border partition last), then sorted by ascending
degree *inside* each partition.  "This approach makes matrix A have no
cross-partition edges for κ partitions, and the upper/left elements of
each partition are expected to be 0" (Section 4.2.2, Figure 1-(3)).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from .base import ReorderingStrategy
from .cluster import ClusterReordering
from .permutation import Permutation


class HybridReordering(ReorderingStrategy):
    """Cluster reordering, then ascending degree within each partition.

    Parameters
    ----------
    seed:
        Seed forwarded to Louvain (default 0 for reproducibility).
    """

    name = "hybrid"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def compute(self, graph: DiGraph) -> Permutation:
        n = graph.n_nodes
        if n == 0:
            return Permutation.identity(0)
        _, assignment = ClusterReordering(seed=self.seed).compute_with_partition(graph)
        degrees = graph.degree_array()
        # Lexicographic sort: primary key partition id (border last),
        # secondary key degree, tertiary node id (stable).
        order = np.lexsort((np.arange(n), degrees, assignment))
        return Permutation.from_order(order)
