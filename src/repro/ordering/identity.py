"""Identity (no-op) reordering.

Useful as a baseline in tests and for graphs whose natural order is
already good (e.g. generators that emit nodes in community order).
"""

from __future__ import annotations

from ..graph.digraph import DiGraph
from .base import ReorderingStrategy
from .permutation import Permutation


class IdentityReordering(ReorderingStrategy):
    """Keep the natural node order."""

    name = "identity"

    def compute(self, graph: DiGraph) -> Permutation:
        return Permutation.identity(graph.n_nodes)
