"""The :class:`Permutation` value object used by all reorderings.

Conventions (fixed here once, so no other module ever has to think about
direction again):

- ``perm.position[u]`` — the *new* position of original node ``u``;
- ``perm.original[i]`` — the original node sitting at new position ``i``;
- ``permute_matrix(M)`` computes ``P M P^T``, i.e. entry ``(u, v)`` of the
  input appears at ``(position[u], position[v])`` of the output — exactly
  "interchanging the rows and columns of matrix A" from Algorithms 1–3;
- vectors in original order are mapped with :meth:`permute_vector` and
  back with :meth:`unpermute_vector`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import InvalidParameterError


class Permutation:
    """A bijection of ``0..n-1`` with both direction lookups precomputed."""

    __slots__ = ("position", "original")

    def __init__(self, position: np.ndarray) -> None:
        position = np.asarray(position, dtype=np.int64)
        n = position.size
        if position.ndim != 1 or not np.array_equal(
            np.sort(position), np.arange(n)
        ):
            raise InvalidParameterError("position must be a bijection of 0..n-1")
        self.position = position
        self.original = np.empty(n, dtype=np.int64)
        self.original[position] = np.arange(n, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of elements permuted."""
        return int(self.position.size)

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` elements."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_order(cls, order: np.ndarray) -> "Permutation":
        """Build from a *visit order*: ``order[i]`` = original id placed at
        position ``i`` (the inverse convention, common when sorting)."""
        order = np.asarray(order, dtype=np.int64)
        n = order.size
        position = np.empty(n, dtype=np.int64)
        if not np.array_equal(np.sort(order), np.arange(n)):
            raise InvalidParameterError("order must be a bijection of 0..n-1")
        position[order] = np.arange(n, dtype=np.int64)
        return cls(position)

    # ------------------------------------------------------------------
    def compose(self, inner: "Permutation") -> "Permutation":
        """The permutation "apply ``inner`` first, then ``self``".

        ``compose(inner).position[u] == self.position[inner.position[u]]``.
        """
        if inner.n != self.n:
            raise InvalidParameterError(
                f"cannot compose permutations of sizes {self.n} and {inner.n}"
            )
        return Permutation(self.position[inner.position])

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        return Permutation(self.original.copy())

    # ------------------------------------------------------------------
    def permute_matrix(self, mat: sp.spmatrix) -> sp.csc_matrix:
        """Symmetrically reorder a square matrix: ``out = P M P^T``.

        Entry ``(u, v)`` of the input lands at
        ``(position[u], position[v])`` of the output.
        """
        n = self.n
        if mat.shape != (n, n):
            raise InvalidParameterError(
                f"matrix shape {mat.shape} does not match permutation size {n}"
            )
        coo = mat.tocoo()
        out = sp.csc_matrix(
            (coo.data, (self.position[coo.row], self.position[coo.col])),
            shape=(n, n),
        )
        out.sort_indices()
        return out

    def permute_vector(self, vec: np.ndarray) -> np.ndarray:
        """Map a vector from original order to permuted order."""
        vec = np.asarray(vec)
        if vec.shape != (self.n,):
            raise InvalidParameterError(
                f"vector shape {vec.shape} does not match permutation size {self.n}"
            )
        out = np.empty_like(vec)
        out[self.position] = vec
        return out

    def unpermute_vector(self, vec: np.ndarray) -> np.ndarray:
        """Map a vector from permuted order back to original order."""
        vec = np.asarray(vec)
        if vec.shape != (self.n,):
            raise InvalidParameterError(
                f"vector shape {vec.shape} does not match permutation size {self.n}"
            )
        return vec[self.position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self.position, other.position)

    def __hash__(self) -> int:
        return hash(self.position.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Permutation(n={self.n})"
