"""Reverse Cuthill–McKee reordering — an extension ablation.

Not part of the paper's three heuristics, but the classical
bandwidth-reducing ordering every sparse-direct-solver practitioner
reaches for first.  Including it lets the ablation benchmark ask the
natural follow-up question the paper leaves open: *how do the proposed
heuristics compare to a standard fill-reducing ordering?*

Implementation (from scratch, on the symmetrised graph):

1. start from a minimum-degree node of each connected component
   (a cheap pseudo-peripheral choice);
2. BFS, visiting each node's unvisited neighbours in ascending degree
   order (the Cuthill–McKee order);
3. reverse the concatenated order (George's observation that the
   reversal reduces fill in factorisation).
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

import numpy as np

from ..graph.digraph import DiGraph
from .base import ReorderingStrategy
from .permutation import Permutation


class RCMReordering(ReorderingStrategy):
    """Reverse Cuthill–McKee over the symmetrised adjacency."""

    name = "rcm"

    def compute(self, graph: DiGraph) -> Permutation:
        n = graph.n_nodes
        if n == 0:
            return Permutation.identity(0)
        degrees = graph.degree_array()
        # Symmetrised neighbour lists (direction is irrelevant to fill).
        neighbors: List[Set[int]] = [set() for _ in range(n)]
        for u, v, _ in graph.edges():
            if u != v:
                neighbors[u].add(v)
                neighbors[v].add(u)

        visited = np.zeros(n, dtype=bool)
        order: List[int] = []
        # Deterministic component starts: global ascending (degree, id).
        starts = sorted(range(n), key=lambda u: (int(degrees[u]), u))
        for start in starts:
            if visited[start]:
                continue
            visited[start] = True
            queue = deque([start])
            while queue:
                u = queue.popleft()
                order.append(u)
                fresh = sorted(
                    (v for v in neighbors[u] if not visited[v]),
                    key=lambda v: (int(degrees[v]), v),
                )
                for v in fresh:
                    visited[v] = True
                    queue.append(v)
        order.reverse()
        return Permutation.from_order(np.asarray(order, dtype=np.int64))
