"""Strategy interface and registry for node reorderings."""

from __future__ import annotations

import abc
from typing import Dict, Type

from ..exceptions import InvalidParameterError
from ..graph.digraph import DiGraph
from .permutation import Permutation


class ReorderingStrategy(abc.ABC):
    """Abstract base for the reordering heuristics of Section 4.2.2.

    Subclasses implement :meth:`compute`, mapping a graph to a
    :class:`~repro.ordering.permutation.Permutation`; ``perm.position[u]``
    is node ``u``'s row/column in the reordered matrix ``A'``.
    """

    #: Registry name; subclasses set this and are auto-registered.
    name: str = ""

    _registry: Dict[str, Type["ReorderingStrategy"]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name:
            ReorderingStrategy._registry[cls.name] = cls

    @abc.abstractmethod
    def compute(self, graph: DiGraph) -> Permutation:
        """Compute the reordering permutation for ``graph``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def get_reordering(name: str, **kwargs) -> ReorderingStrategy:
    """Instantiate a reordering strategy by registry name.

    Known names: ``"degree"``, ``"cluster"``, ``"hybrid"``, ``"random"``,
    ``"identity"``.  Keyword arguments are forwarded to the constructor
    (e.g. ``seed`` for ``"random"``).
    """
    try:
        cls = ReorderingStrategy._registry[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown reordering {name!r}; available: "
            f"{sorted(ReorderingStrategy._registry)}"
        ) from None
    return cls(**kwargs)
