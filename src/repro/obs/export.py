"""Exporters: Prometheus text exposition and JSON metric snapshots.

Two consumers, two formats, one source of truth
(:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`):

- **Prometheus text format** (:func:`to_prometheus`) — the scrape
  surface; histograms render as cumulative ``_bucket{le="..."}`` series
  plus ``_sum``/``_count``, exactly the shape ``histogram_quantile``
  expects on the server side.
- **JSON snapshot** (:func:`write_metrics_json` /
  :func:`read_metrics_json`) — the artifact surface: byte-stable
  (sorted keys) dumps for CI artifacts, the ``serve --metrics-json``
  periodic exporter, and the ``repro metrics`` CLI renderer.  The round
  trip ``read → MetricsRegistry.from_snapshot → snapshot`` is exact.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

from .metrics import MetricsRegistry


def _prom_name(name: str):
    """Split a registry name into (metric, label-suffix) Prometheus parts.

    Registry names carry labels inline (``repro_x_seconds{mode=top_k}``);
    the exposition format wants the values quoted and, for histograms,
    the braces after the series suffix — so the halves are re-rendered
    here rather than passed through.
    """
    if "{" not in name:
        return name, ""
    metric, labels = name.split("{", 1)
    pairs = []
    for pair in labels.rstrip("}").split(","):
        key, _, value = pair.partition("=")
        pairs.append(f'{key}="{value}"')
    return metric, "{" + ",".join(pairs) + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format."""
    lines = []
    typed = set()

    def header(metric: str, kind: str, help_text: str) -> None:
        if metric in typed:
            return
        typed.add(metric)
        if help_text:
            lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")

    for counter in registry.counters():
        metric, labels = _prom_name(counter.name)
        header(metric, "counter", counter.help)
        lines.append(f"{metric}{labels} {_fmt(counter.value)}")
    for gauge in registry.gauges():
        metric, labels = _prom_name(gauge.name)
        header(metric, "gauge", gauge.help)
        lines.append(f"{metric}{labels} {_fmt(gauge.value)}")
    for hist in registry.histograms():
        metric, labels = _prom_name(hist.name)
        header(metric, "histogram", hist.help)
        base = labels[1:-1] if labels else ""  # strip the braces
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            pairs = (base + "," if base else "") + f'le="{_fmt(bound)}"'
            lines.append(f"{metric}_bucket{{{pairs}}} {cumulative}")
        pairs = (base + "," if base else "") + 'le="+Inf"'
        lines.append(f"{metric}_bucket{{{pairs}}} {hist.count}")
        lines.append(f"{metric}_sum{labels} {_fmt(hist.sum)}")
        lines.append(f"{metric}_count{labels} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_json(
    registry: MetricsRegistry,
    path: str,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    """Dump the registry (plus optional metadata) as a sorted-key JSON file."""
    payload: Dict[str, object] = dict(extra or {})
    payload["metrics"] = registry.snapshot()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_metrics_json(path: str) -> Dict[str, object]:
    """Load a :func:`write_metrics_json` file back (payload dict)."""
    with open(path) as handle:
        return json.load(handle)


def registry_from_file(path: str) -> MetricsRegistry:
    """Rebuild a registry from a ``write_metrics_json`` artifact."""
    return MetricsRegistry.from_snapshot(read_metrics_json(path)["metrics"])
