"""Cross-tier observability: metrics, trace spans, exporters.

The paper's contribution is *accounting* — Lemma 1–2 bounds deciding
what not to compute — and the serving stack already counts that work
per call (``n_visited``/``n_computed``/``n_pruned``).  This package
turns those counts plus wall-clock into an operable telemetry surface:

- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket latency :class:`Histogram`\\ s with
  exact-quantile-free p50/p95/p99 estimation, mergeable across worker
  processes; :data:`NULL_REGISTRY` keeps uninstrumented hot paths at
  one attribute check.
- :mod:`repro.obs.tracing` — per-query :class:`Span` trees whose
  context travels across the process boundary inside the micro-batch
  envelope (``scheduler.query → scheduler.route → worker.batch →
  kernel.scan``), with the scan counters and kernel-backend name on the
  leaf; :data:`NULL_TRACER` is the off switch.
- :mod:`repro.obs.export` — Prometheus text exposition, byte-stable
  JSON snapshots (CI artifacts, ``serve --metrics-json``), and the
  JSONL trace log behind ``--trace-jsonl``.

Every consumer takes ``registry=``/``tracer=`` keyword arguments
defaulting to the null singletons, so telemetry is strictly opt-in and
its overhead budget (≤5% on engine throughput, asserted by
``tests/unit/test_obs_overhead.py``) is enforced in tier-1.
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_latency_buckets,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, read_jsonl, remote_span
from .export import (
    read_metrics_json,
    registry_from_file,
    to_prometheus,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "default_latency_buckets",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "remote_span",
    "read_jsonl",
    "to_prometheus",
    "write_metrics_json",
    "read_metrics_json",
    "registry_from_file",
]
