"""Per-query trace spans with a context that crosses process boundaries.

One traced query yields a span tree::

    scheduler.query                      (root, gather side)
    ├── scheduler.route                  (router decision, worker id)
    └── worker.batch                     (replica / shard process)
        └── kernel.scan                  (leaf: scan counters + backend)

The pieces:

- :class:`Span` — a mutable record (ids, name, wall-clock start,
  duration, tags).  ``trace_id``/``span_id`` are allocated from a
  deterministic per-tracer sequence, so traces are reproducible run to
  run (no wall-clock or PRNG in the ids themselves).
- :class:`Tracer` — allocates spans, collects finished ones (local and
  remote), samples (``sample_every``-th query gets a trace), and
  exports JSONL.
- **context propagation** — :meth:`Span.context` is a tiny picklable
  dict ``{"trace_id", "span_id"}`` that rides inside the micro-batch
  envelope; the worker side builds child span *records* with
  :func:`remote_span` (no tracer object needed in the worker) and ships
  the finished dicts back in the reply envelope, where
  :meth:`Tracer.absorb` files them under the originating trace.

Cross-process clocks: ``start`` is ``time.time()`` (comparable across
processes to wall-clock accuracy) while ``seconds`` is measured with
``perf_counter`` deltas (monotone within a process).  Span *ordering*
therefore comes from the tree structure, not timestamp arithmetic.

Examples
--------
>>> tracer = Tracer()
>>> root = tracer.start("scheduler.query", tags={"query": 3})
>>> child = tracer.start("scheduler.route", parent=root)
>>> tracer.finish(child)
>>> tracer.finish(root)
>>> [s["name"] for s in tracer.export()]
['scheduler.route', 'scheduler.query']
>>> tracer.export()[0]["trace_id"] == tracer.export()[1]["trace_id"]
True
"""

from __future__ import annotations

import json
from time import perf_counter, time
from typing import Dict, List, Optional

#: Context dict keys (the only state that crosses the wire forward).
CTX_TRACE = "trace_id"
CTX_SPAN = "span_id"


class Span:
    """One timed, tagged node of a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "seconds",
        "tags",
        "_t0",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time()
        self.seconds: Optional[float] = None
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self._t0 = perf_counter()

    def context(self) -> Dict[str, int]:
        """The picklable propagation context for child spans elsewhere."""
        return {CTX_TRACE: self.trace_id, CTX_SPAN: self.span_id}

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "tags": dict(self.tags),
        }


def remote_span(
    ctx: Dict[str, int],
    span_id: int,
    name: str,
    seconds: float,
    tags: Optional[Dict[str, object]] = None,
    parent_id: Optional[int] = None,
) -> Dict[str, object]:
    """Build a finished child-span *record* on the far side of the wire.

    Workers have no tracer; they mint span dicts under the caller's
    trace context and ship them back in the reply envelope.  ``span_id``
    (and ``parent_id``, when linking to another remote span of the same
    worker) are the worker's own positive ordinals; they are stored
    *negated* so the absorbing tracer can tell worker-minted ids apart
    from gather-side ids copied out of the context — the two sequences
    both start at 1 and would otherwise be ambiguous.  Parents defaulted
    from ``ctx`` stay positive and survive :meth:`Tracer.absorb`
    untouched.
    """
    return {
        "trace_id": ctx[CTX_TRACE],
        "span_id": -int(span_id),
        "parent_id": ctx[CTX_SPAN] if parent_id is None else -int(parent_id),
        "name": name,
        "start": time() - seconds,
        "seconds": seconds,
        "tags": dict(tags) if tags else {},
    }


class Tracer:
    """Span factory + collector + sampler for one serving process.

    Parameters
    ----------
    sample_every:
        Trace every N-th sampling decision (1 = trace everything).  The
        decision is taken by :meth:`sample`, which call sites consult
        once per request; non-sampled requests cost one modulo.
    max_spans:
        Retention cap of the in-memory span buffer; the oldest finished
        spans are dropped beyond it (traces are exported incrementally
        in long-running serves, so the cap only bounds memory).
    """

    enabled = True

    def __init__(self, sample_every: int = 1, max_spans: int = 100_000) -> None:
        if sample_every < 1:
            sample_every = 1
        self.sample_every = int(sample_every)
        self.max_spans = int(max_spans)
        self._next_trace = 0
        self._next_span = 0
        self._decisions = 0
        self._finished: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def sample(self) -> bool:
        """One sampling decision; True on every ``sample_every``-th call."""
        decision = self._decisions % self.sample_every == 0
        self._decisions += 1
        return decision

    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span; a new trace when ``parent`` is None."""
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(trace_id, self._next_span, parent_id, name, tags)

    def finish(self, span: Span, tags: Optional[Dict[str, object]] = None) -> None:
        """Close a span (idempotence not required) and buffer its record."""
        span.seconds = perf_counter() - span._t0
        if tags:
            span.tags.update(tags)
        self._buffer(span.as_dict())

    def absorb(
        self, records: List[Dict[str, object]], namespace: Optional[int] = None
    ) -> None:
        """File remote span records under their originating traces.

        ``namespace`` (e.g. a worker id) is folded into the remote span
        ids so ids minted independently by different workers cannot
        collide.  Worker-minted ids arrive *negative* (see
        :func:`remote_span`) and are lifted into a per-worker positive
        band; parent links to gather-side spans (positive ids the remote
        side copied out of the context) are left alone.
        """
        if namespace is None:
            for record in records:
                self._buffer(dict(record))
            return
        # Remote ids are small negated per-worker ordinals; lift them
        # into a per-worker band far above the gather side's sequence.
        base = (namespace + 1) * 1_000_000_000
        for record in records:
            record = dict(record)
            if record["span_id"] < 0:
                record["span_id"] = base - record["span_id"]
            parent = record["parent_id"]
            if parent is not None and parent < 0:
                record["parent_id"] = base - parent
            self._buffer(record)

    def _buffer(self, record: Dict[str, object]) -> None:
        self._finished.append(record)
        if len(self._finished) > self.max_spans:
            del self._finished[: len(self._finished) - self.max_spans]

    # ------------------------------------------------------------------
    def export(self) -> List[Dict[str, object]]:
        """Finished span records in completion order."""
        return list(self._finished)

    def drain(self) -> List[Dict[str, object]]:
        """Export and clear the buffer (incremental JSONL flushing)."""
        records, self._finished = self._finished, []
        return records

    def trace_tree(self, trace_id: int) -> Dict[Optional[int], List[dict]]:
        """``parent_id -> [children]`` adjacency of one finished trace."""
        tree: Dict[Optional[int], List[dict]] = {}
        for record in self._finished:
            if record["trace_id"] == trace_id:
                tree.setdefault(record["parent_id"], []).append(record)
        return tree

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Write (or append) every buffered span as one JSON line each."""
        records = self.export()
        with open(path, "a" if append else "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


class NullTracer:
    """Telemetry-off tracer: every surface answers without allocating."""

    enabled = False
    sample_every = 0

    def sample(self) -> bool:
        return False

    def start(self, name, parent=None, tags=None) -> None:
        return None

    def finish(self, span, tags=None) -> None:
        pass

    def absorb(self, records, namespace=None) -> None:
        pass

    def export(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def write_jsonl(self, path, append: bool = False) -> int:
        return 0


#: Process-wide no-op singleton; the default of every ``tracer=``
#: parameter in the serving layers.
NULL_TRACER = NullTracer()


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL trace log back into span records (tests, tooling)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
