"""Low-overhead metrics: counters, gauges, fixed-bucket histograms.

The registry is the one instrumentation surface every serving tier
registers into — :class:`~repro.query.engine.QueryEngine`,
:class:`~repro.query.planner.ScatterGatherPlanner`, the micro-batch and
sharded schedulers, and :class:`~repro.serving.publisher.SnapshotPublisher`
all take an optional registry and record into it when it is enabled.

Design constraints, in order:

1. **Hot paths pay one attribute check when telemetry is off.**  Every
   instrumented call site guards on ``registry.enabled``; the
   :data:`NULL_REGISTRY` singleton answers ``False`` and hands out
   no-op instruments, so an uninstrumented engine and an engine holding
   the null registry run the same code to within one ``if``.
2. **Exact-quantile-free percentiles.**  Latency distributions are kept
   as fixed-bucket histograms (log-spaced boundaries, 1µs…60s by
   default): O(1) per observation, O(buckets) per scrape, and
   **mergeable across workers** by adding bucket counts — which is how
   per-worker histograms fold into one pool-level p99.  Quantiles are
   estimated by linear interpolation inside the owning bucket, clamped
   to the observed min/max so a one-sample histogram reports that
   sample exactly.
3. **Stable export.**  :meth:`MetricsRegistry.snapshot` is a plain
   JSON-stable dict (sorted keys, no floats derived from dict order);
   :func:`repro.obs.export.to_prometheus` renders the same state as
   Prometheus text exposition format.

Examples
--------
>>> reg = MetricsRegistry()
>>> reg.counter("queries_total").inc(3)
>>> h = reg.histogram("request_seconds")
>>> for ms in (1, 2, 4):
...     h.observe(ms / 1000.0)
>>> h.count
3
>>> round(h.quantile(1.0), 6)
0.004
>>> NULL_REGISTRY.enabled
False
>>> NULL_REGISTRY.counter("ignored").inc()   # no-op, no state
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError


def default_latency_buckets() -> Tuple[float, ...]:
    """Log-spaced latency boundaries (seconds): 1µs … 60s, 4 per decade.

    The top-k scan costs ~100µs warm and a snapshot load seconds — one
    bucket ladder covers both with ≤ ~78% relative error per bucket,
    tight enough for SLO envelopes without per-sample storage.
    """
    bounds = [10.0 ** (e / 4.0) for e in range(-24, 7)]  # 1e-6 .. ~31.6
    bounds.append(60.0)
    return tuple(bounds)


DEFAULT_LATENCY_BUCKETS = default_latency_buckets()


class Counter:
    """Monotone counter.  ``inc`` only; negative increments are rejected."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self.value += amount


class Gauge:
    """Point-in-time value: set/inc/dec."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit +inf bucket catches the overflow.  Per-observation cost is
    one ``bisect`` plus four scalar updates — no per-sample storage, so
    a histogram's memory is constant and two histograms with the same
    bounds merge by adding counts (the per-worker → pool fold).
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(float(b) for b in (bounds or DEFAULT_LATENCY_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name!r} bounds must be strictly increasing "
                f"and non-empty, got {bounds!r}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from bucket counts.

        Linear interpolation inside the owning bucket, with the bucket
        edges tightened to the observed ``min``/``max`` — so an empty
        histogram returns 0.0, a one-sample histogram returns that
        sample for every q, and no estimate ever leaves the observed
        range (the +inf bucket interpolates up to ``max``).
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile wants 0..1, got {q!r}")
        if self.count == 0:
            return 0.0
        if self.count == 1 or q >= 1.0:
            return self.max if q > 0.0 else self.min
        # Rank of the target sample (0-based, continuous).
        target = q * (self.count - 1)
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count > target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min) if lo < self.min else lo
                hi = min(hi, self.max)
                if hi <= lo:
                    return hi
                frac = (target - seen) / bucket_count
                return lo + frac * (hi - lo)
            seen += bucket_count
        return self.max  # pragma: no cover - q<1 always lands above

    def percentiles(self) -> Dict[str, float]:
        """The SLO envelope: p50/p95/p99 plus count/mean/min/max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram in place.

        Both histograms must share bucket bounds — the invariant that
        makes per-worker histograms addable at the pool level.
        """
        if other.bounds != self.bounds:
            raise InvalidParameterError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def state(self) -> Dict[str, object]:
        """JSON-stable serialisation (inverse of :meth:`from_state`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_state(
        cls, name: str, state: Dict[str, object], help: str = ""
    ) -> "Histogram":
        h = cls(name, help=help, bounds=state["bounds"])
        h.counts = [int(c) for c in state["counts"]]
        h.count = int(state["count"])
        h.sum = float(state["sum"])
        h.min = math.inf if state["min"] is None else float(state["min"])
        h.max = -math.inf if state["max"] is None else float(state["max"])
        return h


def _key(name: str, labels: Optional[Dict[str, str]]) -> Tuple:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(key: Tuple) -> str:
    if len(key) == 1:
        return key[0]
    pairs = ",".join(f"{k}={v}" for k, v in key[1:])
    return f"{key[0]}{{{pairs}}}"


class MetricsRegistry:
    """Name → instrument map, one per serving process.

    Instruments are created on first use and identified by
    ``(name, sorted labels)``; repeated calls return the same object, so
    call sites can fetch-and-record inline without caching handles
    (though hot paths should cache — attribute lookups are the tax).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}
        self._collectors: List = []
        self._collecting = False

    def add_collector(self, fn) -> None:
        """Register a scrape-time sync callback.

        Collectors run (idempotently) before any read of the registry —
        :meth:`snapshot`, the sorted listings, :meth:`merge`.  They let
        hot call sites keep their own cheap aggregates and mirror them
        into instruments only when somebody actually looks: the engine
        pays one histogram observation per call instead of a dozen
        counter stores (the 5% overhead budget of
        ``tests/unit/test_obs_overhead.py``).
        """
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run every registered collector (reentrancy-guarded)."""
        if self._collecting or not self._collectors:
            return
        self._collecting = True
        try:
            for fn in self._collectors:
                fn()
        finally:
            self._collecting = False

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(_label_str(key), help)
        return instrument

    def gauge(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(_label_str(key), help)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                _label_str(key), help, bounds=bounds
            )
        return instrument

    # ------------------------------------------------------------------
    def counters(self) -> List[Counter]:
        self.collect()
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        self.collect()
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        self.collect()
        return [self._histograms[k] for k in sorted(self._histograms)]

    def snapshot(self) -> Dict[str, object]:
        """One JSON-stable dict of the whole registry state."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "gauges": {g.name: g.value for g in self.gauges()},
            "histograms": {h.name: h.state() for h in self.histograms()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (round-trip)."""
        reg = cls()
        for name, value in snapshot.get("counters", {}).items():
            reg._counters[(name,)] = c = Counter(name)
            c.value = float(value)
        for name, value in snapshot.get("gauges", {}).items():
            reg._gauges[(name,)] = g = Gauge(name)
            g.value = float(value)
        for name, state in snapshot.get("histograms", {}).items():
            reg._histograms[(name,)] = Histogram.from_state(name, state)
        return reg

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the other
        side's value, histograms merge bucket-wise (per-worker fold)."""
        self.collect()
        other.collect()
        for key, counter in other._counters.items():
            self.counter(key[0], labels=dict(key[1:]) or None)
            self._counters[key].value += counter.value
        for key, gauge in other._gauges.items():
            self.gauge(key[0], labels=dict(key[1:]) or None)
            self._gauges[key].value = gauge.value
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self.histogram(
                    key[0], labels=dict(key[1:]) or None, bounds=hist.bounds
                )
            mine.merge(hist)


class _NullInstrument:
    """Answers every instrument method with a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The telemetry-off registry: one attribute check, no state.

    Shares the :class:`MetricsRegistry` surface so call sites never
    branch on registry type — only on :attr:`enabled` when they want to
    skip argument construction too.
    """

    enabled = False

    def counter(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=None, bounds=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self) -> list:
        return []

    def gauges(self) -> list:
        return []

    def histograms(self) -> list:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, other) -> None:
        pass

    def add_collector(self, fn) -> None:
        pass

    def collect(self) -> None:
        pass


#: Process-wide no-op singleton; the default of every ``registry=``
#: parameter in the query and serving layers.
NULL_REGISTRY = NullRegistry()
