"""The breadth-first visit schedule of the K-dash search (Section 4.3).

The search "constructs a single breadth-first search tree rooted at the
query node" and visits nodes in ascending layer order.  :class:`BFSTree`
packages that schedule and additionally supports the two situations the
paper's pseudocode leaves implicit:

- **Unreachable nodes** (not in the tree): their proximity w.r.t. the
  root-as-query is exactly zero, so with the default root they are never
  scheduled.  For exactness bookkeeping they are exposed via
  :meth:`unreached`.
- **Root override** (the Figure 9 ablation selects a *random* root): the
  query may then be unreachable from the root, and non-tree nodes may
  have nonzero proximities.  In that mode every non-tree node is
  appended after the tree in a synthetic final layer; the BFS edge
  property (an in-neighbour of ``u`` sits no more than one layer above
  ``u``) still holds for the extended schedule, which is what keeps the
  estimator's bound valid (see ``ProximityEstimator`` notes).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..graph.digraph import DiGraph
from ..graph.traversal import UNREACHED, bfs_order
from ..validation import check_node_id


class BFSTree:
    """Layered BFS visit schedule from a root node.

    Parameters
    ----------
    graph:
        The graph (traversal follows out-edges — the walk direction).
    root:
        Root node of the tree (the query node in normal operation).
    include_unreached:
        When ``True``, nodes outside the tree are appended after all tree
        layers, in ascending id order, with layer ``max_layer + 1``.
        Required when ``root`` is not the query node.
    """

    def __init__(self, graph: DiGraph, root: int, include_unreached: bool = False) -> None:
        root = check_node_id(root, graph.n_nodes, "root")
        order, layers = bfs_order(graph, root)
        self.root = root
        self.n_nodes = graph.n_nodes
        self._tree_size = order.size
        if include_unreached and order.size < graph.n_nodes:
            extra = np.flatnonzero(layers == UNREACHED)
            synthetic_layer = int(layers.max()) + 1
            layers = layers.copy()
            layers[extra] = synthetic_layer
            order = np.concatenate([order, extra])
        self.order = order
        self.layers = layers

    # ------------------------------------------------------------------
    @property
    def n_scheduled(self) -> int:
        """Number of nodes in the visit schedule."""
        return int(self.order.size)

    @property
    def n_tree_nodes(self) -> int:
        """Number of nodes actually reachable from the root."""
        return int(self._tree_size)

    @property
    def depth(self) -> int:
        """Largest layer number in the schedule (0 for a single node)."""
        if self.order.size == 0:
            return 0
        return int(self.layers[self.order].max())

    def layer_of(self, node: int) -> int:
        """Layer of ``node`` (:data:`UNREACHED` = -1 when unscheduled)."""
        node = check_node_id(node, self.n_nodes, "node")
        return int(self.layers[node])

    def unreached(self) -> np.ndarray:
        """Sorted ids of nodes absent from the schedule."""
        return np.flatnonzero(self.layers == UNREACHED)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(node, layer)`` in visit order."""
        for u in self.order:
            yield int(u), int(self.layers[u])

    def layer_groups(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(layer, nodes)`` groups in ascending-layer visit order.

        The grouping the pruned-scan kernel consumes for fixed
        schedules: consecutive runs of equal layer numbers, with nodes
        in visit order inside each group.  Layer numbers may jump by
        more than one only through the synthetic ``include_unreached``
        layer; the kernel's bound state resets across such a gap.
        """
        order = self.order
        layers = self.layers
        i = 0
        m = int(order.size)
        while i < m:
            layer = int(layers[order[i]])
            group: List[int] = []
            while i < m and int(layers[order[i]]) == layer:
                group.append(int(order[i]))
                i += 1
            yield layer, group

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BFSTree(root={self.root}, scheduled={self.n_scheduled}/"
            f"{self.n_nodes}, depth={self.depth})"
        )
