"""Dynamic K-dash: exact queries under edge updates, without rebuilding.

The paper's index is static — its conclusion points at dynamic graphs as
the natural next step ("will allow many more RWR-based applications to
be developed").  This module adds that capability in a mathematically
exact way:

An edge insertion/deletion touching node ``u`` changes *only column u*
of the column-normalised transition matrix (the column renormalises).
A batch of updates touching columns ``U = {u_1..u_r}`` is therefore the
low-rank correction

.. math:: W' = W - (1-c)\\, D E^T

with ``D`` holding the column deltas and ``E`` the touched basis
vectors.  By the Woodbury identity,

.. math::

    W'^{-1} = W^{-1} + W^{-1} D \\Bigl(\\tfrac{1}{1-c} I - E^T W^{-1} D\\Bigr)^{-1}
              E^T W^{-1}

every quantity of which the built index can produce: ``W^{-1} x`` is two
sparse triangular products with the stored inverses.  Queries under
pending updates therefore cost one full ``W^{-1} e_q`` product plus an
``r``-dimensional correction — exact, but without the pruned search —
and :meth:`DynamicKDash.rebuild` re-establishes the fast path when the
update batch has grown past :attr:`rebuild_threshold`.

``W'`` stays strictly column diagonally dominant (the updated ``A`` is
still column-substochastic), so the small core matrix is always
invertible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..graph.digraph import DiGraph
from ..graph.matrices import column_normalized_adjacency
from ..rwr.proximity import top_k_from_vector
from ..validation import check_k, check_node_id, check_positive_int
from .kdash import KDash
from .topk import TopKResult


class DynamicKDash:
    """A K-dash index that absorbs edge updates exactly.

    Parameters
    ----------
    graph:
        Initial graph (copied; later mutations go through this wrapper).
    c:
        Restart probability.
    reordering:
        Forwarded to the underlying :class:`~repro.core.kdash.KDash`.
    rebuild_threshold:
        Rebuild automatically once this many *distinct columns* have
        pending updates (the correction cost grows with the batch rank).
        ``None`` disables auto-rebuild.

    Examples
    --------
    >>> from repro.graph import star_graph
    >>> dyn = DynamicKDash(star_graph(4), c=0.9)
    >>> dyn.add_edge(1, 2)
    >>> result = dyn.top_k(1, 2)   # exact despite the pending update
    """

    def __init__(
        self,
        graph: DiGraph,
        c: float = 0.95,
        reordering="hybrid",
        rebuild_threshold: Optional[int] = 64,
    ) -> None:
        self.graph = graph.copy()
        self.c = c
        self._reordering = reordering
        if rebuild_threshold is not None:
            rebuild_threshold = check_positive_int(rebuild_threshold, "rebuild_threshold")
        self.rebuild_threshold = rebuild_threshold
        self._base = KDash(self.graph.copy(), c=c, reordering=reordering).build()
        self._base_adjacency = column_normalized_adjacency(self._base.graph)
        self._dirty_columns: set = set()
        self._correction_cache: Optional[dict] = None
        self.n_rebuilds = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def n_pending_columns(self) -> int:
        """Distinct transition-matrix columns with pending updates."""
        return len(self._dirty_columns)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert (or strengthen) edge ``u -> v``; queries stay exact."""
        self.graph.add_edge(u, v, weight)
        self._mark_dirty(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``u -> v``; queries stay exact."""
        self.graph.remove_edge(u, v)
        self._mark_dirty(u)

    def set_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of ``u -> v`` (created when absent)."""
        self.graph.set_edge_weight(u, v, weight)
        self._mark_dirty(u)

    def _mark_dirty(self, column: int) -> None:
        self._dirty_columns.add(int(column))
        self._correction_cache = None
        if (
            self.rebuild_threshold is not None
            and len(self._dirty_columns) >= self.rebuild_threshold
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Flatten pending updates into a fresh precomputation."""
        self._base = KDash(
            self.graph.copy(), c=self.c, reordering=self._reordering
        ).build()
        self._base_adjacency = column_normalized_adjacency(self._base.graph)
        self._dirty_columns.clear()
        self._correction_cache = None
        self.n_rebuilds += 1

    # ------------------------------------------------------------------
    # Woodbury machinery
    # ------------------------------------------------------------------
    def _w_inverse_product(self, vec_perm: np.ndarray) -> np.ndarray:
        """``W^-1 x`` in permuted coordinates via the stored inverses."""
        base = self._base
        return base._u_inv_scipy @ (base._l_inv_scipy @ vec_perm)

    def _correction(self) -> dict:
        """Per-batch Woodbury pieces: touched columns, W^-1 D, core inverse."""
        if self._correction_cache is not None:
            return self._correction_cache
        base = self._base
        n = self.graph.n_nodes
        columns = sorted(self._dirty_columns)
        r = len(columns)
        position = base._perm.position
        current = column_normalized_adjacency(self.graph)
        # D (permuted): new column minus base column, for each touched u.
        d_perm = np.zeros((n, r), dtype=np.float64)
        for j, u in enumerate(columns):
            delta = (
                current[:, u].toarray().ravel()
                - self._base_adjacency[:, u].toarray().ravel()
            )
            d_perm[position, j] = delta
        w_inv_d = np.column_stack(
            [self._w_inverse_product(d_perm[:, j]) for j in range(r)]
        )
        touched_positions = position[np.asarray(columns, dtype=np.int64)]
        core = np.eye(r) / (1.0 - self.c) - w_inv_d[touched_positions, :]
        self._correction_cache = {
            "columns": columns,
            "w_inv_d": w_inv_d,
            "core_inv": np.linalg.inv(core),
            "touched_positions": touched_positions,
        }
        return self._correction_cache

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def proximity_column(self, query: int) -> np.ndarray:
        """Exact proximity vector under all pending updates."""
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        base = self._base
        if not self._dirty_columns:
            return base.proximity_column(query)
        e_q = np.zeros(n, dtype=np.float64)
        e_q[int(base._perm.position[query])] = 1.0
        w_inv_q = self._w_inverse_product(e_q)
        pieces = self._correction()
        coefficients = pieces["core_inv"] @ w_inv_q[pieces["touched_positions"]]
        corrected = w_inv_q + pieces["w_inv_d"] @ coefficients
        return base._perm.unpermute_vector(self.c * corrected)

    def top_k(self, query: int, k: int = 5) -> TopKResult:
        """Exact top-k under pending updates.

        With an empty update batch this delegates to the base index's
        pruned search; otherwise it ranks the corrected full vector
        (``n_computed = n`` reflects the exhaustive cost — call
        :meth:`rebuild` to restore pruning).
        """
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        k = check_k(k)
        if not self._dirty_columns:
            return self._base.top_k(query, k)
        vector = self.proximity_column(query)
        items = tuple(top_k_from_vector(vector, min(k, n)))
        return TopKResult(
            query=query,
            k=k,
            items=items,
            n_visited=n,
            n_computed=n,
            n_pruned=0,
            terminated_early=False,
            padded=len(items) < k,
        )
