"""Dynamic K-dash: exact queries under edge updates, without rebuilding.

The paper's index is static — its conclusion points at dynamic graphs as
the natural next step ("will allow many more RWR-based applications to
be developed").  This module adds that capability in a mathematically
exact way:

An edge insertion/deletion touching node ``u`` changes *only column u*
of the column-normalised transition matrix (the column renormalises).
A batch of updates touching columns ``U = {u_1..u_r}`` is therefore the
low-rank correction

.. math:: W' = W - (1-c)\\, D E^T

with ``D`` holding the column deltas and ``E`` the touched basis
vectors.  By the Woodbury identity,

.. math::

    W'^{-1} = W^{-1} + W^{-1} D \\Bigl(\\tfrac{1}{1-c} I - E^T W^{-1} D\\Bigr)^{-1}
              E^T W^{-1}

every quantity of which the built index can produce: ``W^{-1} x`` is two
sparse triangular products with the stored inverses.  Queries under
pending updates therefore cost one full ``W^{-1} e_q`` product plus an
``r``-dimensional correction — exact, but without the pruned search —
and :meth:`DynamicKDash.rebuild` re-establishes the fast path when the
update batch has grown past :attr:`rebuild_threshold`.

The correction state is maintained **incrementally**: each touched
column contributes one cached ``W^{-1} d_u`` product, computed when the
column first goes stale and reused for every later batch that leaves it
untouched.  A new batch therefore costs one triangular product per
*newly or re-touched* column plus one ``r × r`` core inversion — the
rank grows with the touched-column set, but earlier columns are never
recomputed.  Columns whose accumulated delta cancels out (e.g. a
delete-then-reinsert of the same edge) drop out of the correction
entirely, shrinking the rank back.

``W'`` stays strictly column diagonally dominant (the updated ``A`` is
still column-substochastic), so the small core matrix is always
invertible.

For serving workloads, wrap the wrapper in a
:class:`~repro.query.engine.QueryEngine`: the engine tracks
:attr:`update_serial` to invalidate its result cache per update batch
(epochs), routes queries through the corrected path while updates are
pending, and applies a :class:`~repro.query.engine.RebuildPolicy` to
swap in a freshly built index once the correction rank or the measured
query slowdown grows too large.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..graph.digraph import DiGraph
from ..graph.matrices import column_normalized_adjacency
from ..rwr.proximity import top_k_from_vector
from ..validation import (
    check_k,
    check_node_id,
    check_positive_int,
    check_restart_set,
    check_threshold,
)
from .kdash import KDash
from .topk import TopKResult


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`DynamicKDash.apply_updates` batch did.

    Attributes
    ----------
    n_inserted / n_deleted:
        Edge insertions / deletions applied by the batch.
    touched_columns:
        Distinct transition-matrix columns the batch touched.
    pending_rank:
        Correction rank after the batch (distinct columns whose delta
        against the built index is nonzero); ``0`` right after a rebuild.
    rebuilt:
        Whether the batch tripped :attr:`DynamicKDash.rebuild_threshold`.
    seconds:
        Wall-clock time of the whole batch (mutation + correction
        maintenance + any rebuild).
    """

    n_inserted: int
    n_deleted: int
    touched_columns: Tuple[int, ...]
    pending_rank: int
    rebuilt: bool
    seconds: float


class DynamicKDash:
    """A K-dash index that absorbs edge updates exactly.

    Parameters
    ----------
    graph:
        Initial graph (copied; later mutations go through this wrapper).
    c:
        Restart probability.
    reordering:
        Forwarded to the underlying :class:`~repro.core.kdash.KDash`.
    rebuild_threshold:
        Rebuild automatically once this many *distinct columns* have
        pending updates (the correction cost grows with the batch rank).
        ``None`` disables auto-rebuild.

    Examples
    --------
    >>> from repro.graph import star_graph
    >>> dyn = DynamicKDash(star_graph(4), c=0.9)
    >>> dyn.add_edge(1, 2)
    >>> result = dyn.top_k(1, 2)   # exact despite the pending update
    """

    def __init__(
        self,
        graph: DiGraph,
        c: float = 0.95,
        reordering="hybrid",
        rebuild_threshold: Optional[int] = 64,
    ) -> None:
        self.graph = graph.copy()
        self.c = c
        self._reordering = reordering
        if rebuild_threshold is not None:
            rebuild_threshold = check_positive_int(rebuild_threshold, "rebuild_threshold")
        self.rebuild_threshold = rebuild_threshold
        self._adopt(KDash(self.graph.copy(), c=c, reordering=reordering).build())
        self._reset_correction_state()
        self._serial = 0
        self.n_rebuilds = 0

    @classmethod
    def from_index(
        cls, index: KDash, rebuild_threshold: Optional[int] = 64
    ) -> "DynamicKDash":
        """Wrap an already-built (or loaded) index without rebuilding it.

        The serving path for persisted indexes: ``load_index`` the
        ``.npz``, adopt it here, and start applying updates.  The index's
        graph is copied, so mutations stay inside the wrapper.
        """
        if not index.is_built:
            index.build()
        dyn = cls.__new__(cls)
        dyn.graph = index.graph.copy()
        dyn.c = index.c
        dyn._reordering = index._strategy
        if rebuild_threshold is not None:
            rebuild_threshold = check_positive_int(rebuild_threshold, "rebuild_threshold")
        dyn.rebuild_threshold = rebuild_threshold
        dyn._adopt(index)
        dyn._reset_correction_state()
        dyn._serial = 0
        dyn.n_rebuilds = 0
        return dyn

    def _adopt(self, base: KDash) -> None:
        self._base = base
        self._base_adjacency = column_normalized_adjacency(base.graph)

    def _reset_correction_state(self) -> None:
        self._dirty_columns: Set[int] = set()
        self._stale_columns: Set[int] = set()
        self._wd_columns: Dict[int, np.ndarray] = {}
        self._core_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def n_pending_columns(self) -> int:
        """Distinct transition-matrix columns with pending updates."""
        return len(self._dirty_columns)

    @property
    def pending_rank(self) -> int:
        """Alias of :attr:`n_pending_columns` — the Woodbury correction rank."""
        return len(self._dirty_columns)

    @property
    def update_serial(self) -> int:
        """Monotone counter bumped by every mutation (not by rebuilds).

        Serving layers compare this against the last value they saw to
        invalidate result caches atomically per update batch; rebuilds
        do not change any query answer, so they leave it untouched.
        """
        return self._serial

    @property
    def base_index(self) -> KDash:
        """The underlying built index (fresh after every rebuild)."""
        return self._base

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert (or strengthen) edge ``u -> v``; queries stay exact."""
        self.graph.add_edge(u, v, weight)
        self._mark_dirty(u)
        self._maybe_auto_rebuild()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``u -> v``; queries stay exact."""
        self.graph.remove_edge(u, v)
        self._mark_dirty(u)
        self._maybe_auto_rebuild()

    def set_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of ``u -> v`` (created when absent)."""
        self.graph.set_edge_weight(u, v, weight)
        self._mark_dirty(u)
        self._maybe_auto_rebuild()

    def apply_updates(
        self,
        inserts: Iterable[tuple] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> UpdateReport:
        """Apply one batch of edge updates and refresh the correction.

        Deletes are applied first, then inserts, so a batch may delete
        and re-insert the same edge.  Unlike the single-edge mutators the
        batch refreshes the Woodbury pieces *eagerly* — one triangular
        product per touched column plus one ``r × r`` core inversion — so
        queries arriving after the batch pay only the correction
        application, and columns whose delta cancelled out are dropped
        from the correction immediately.

        Parameters
        ----------
        inserts:
            Iterable of ``(u, v)`` or ``(u, v, weight)`` edge insertions
            (weight defaults to 1.0; parallel inserts accumulate weight,
            matching :meth:`~repro.graph.digraph.DiGraph.add_edge`).
        deletes:
            Iterable of ``(u, v)`` edge deletions.

        Returns
        -------
        UpdateReport
            Batch accounting, including the correction rank afterwards.
        """
        t0 = perf_counter()
        n_deleted = 0
        n_inserted = 0
        touched: Set[int] = set()
        # Each column is marked dirty the moment its mutation lands, so a
        # mid-batch failure (e.g. deleting a missing edge) leaves every
        # already-applied mutation covered by the correction — queries
        # stay exact even on a partially-applied batch.
        for item in deletes:
            u, v = (int(item[0]), int(item[1]))
            self.graph.remove_edge(u, v)
            self._mark_dirty(u)
            touched.add(u)
            n_deleted += 1
        for item in inserts:
            if len(item) == 2:
                u, v, w = int(item[0]), int(item[1]), 1.0
            elif len(item) == 3:
                u, v, w = int(item[0]), int(item[1]), float(item[2])
            else:
                raise InvalidParameterError(
                    f"insert must be (u, v) or (u, v, weight), got {item!r}"
                )
            self.graph.add_edge(u, v, w)
            self._mark_dirty(u)
            touched.add(u)
            n_inserted += 1
        rebuilds_before = self.n_rebuilds
        self._maybe_auto_rebuild()
        rebuilt = self.n_rebuilds > rebuilds_before
        if not rebuilt and self._dirty_columns:
            self._refresh_stale_columns()
        return UpdateReport(
            n_inserted=n_inserted,
            n_deleted=n_deleted,
            touched_columns=tuple(sorted(touched)),
            pending_rank=self.n_pending_columns,
            rebuilt=rebuilt,
            seconds=perf_counter() - t0,
        )

    def _mark_dirty(self, column: int) -> None:
        column = int(column)
        self._dirty_columns.add(column)
        self._stale_columns.add(column)
        self._core_cache = None
        self._serial += 1

    def _maybe_auto_rebuild(self) -> None:
        if (
            self.rebuild_threshold is not None
            and len(self._dirty_columns) >= self.rebuild_threshold
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Flatten pending updates into a fresh precomputation.

        Swaps a freshly built index (and its
        :class:`~repro.query.prepared.PreparedIndex`) in behind this
        handle; pending correction state is discarded.  Answers are
        unchanged — only the fast pruned path is restored — so
        :attr:`update_serial` is not bumped and serving caches stay valid.
        """
        self._adopt(
            KDash(self.graph.copy(), c=self.c, reordering=self._reordering).build()
        )
        self._reset_correction_state()
        self.n_rebuilds += 1

    # ------------------------------------------------------------------
    # Woodbury machinery
    # ------------------------------------------------------------------
    def _w_inverse_product(self, vec_perm: np.ndarray) -> np.ndarray:
        """``W^-1 x`` in permuted coordinates via the stored inverses."""
        base = self._base
        return base._u_inv_scipy @ (base._l_inv_scipy @ vec_perm)

    def _current_column(self, u: int) -> np.ndarray:
        """Column ``u`` of the *current* transition matrix, dense.

        Derived straight from the out-edges of ``u`` — no full-matrix
        normalisation per batch.  A dangling ``u`` yields the zero column,
        matching :func:`~repro.graph.matrices.column_normalized_adjacency`.
        """
        col = np.zeros(self.graph.n_nodes, dtype=np.float64)
        total = self.graph.out_weight(u)
        if total > 0.0:
            # Multiply by the reciprocal, exactly as the full-matrix
            # normalisation does, so an undone update cancels bit-for-bit.
            scale = 1.0 / total
            for v in self.graph.successors(u):
                col[v] = self.graph.edge_weight(u, v) * scale
        return col

    def _refresh_stale_columns(self) -> None:
        """Recompute ``W^-1 d_u`` for columns touched since the last refresh.

        The incremental part of the maintenance: only stale columns pay a
        triangular product; the cached products of untouched columns are
        reused verbatim.  Columns whose delta cancelled back to zero are
        dropped from the correction (rank shrinks).
        """
        if not self._stale_columns:
            return
        base = self._base
        n = self.graph.n_nodes
        position = base._perm.position
        for u in sorted(self._stale_columns):
            delta = (
                self._current_column(u)
                - self._base_adjacency[:, u].toarray().ravel()
            )
            if not delta.any():
                self._dirty_columns.discard(u)
                self._wd_columns.pop(u, None)
                continue
            d_perm = np.zeros(n, dtype=np.float64)
            d_perm[position] = delta
            self._wd_columns[u] = self._w_inverse_product(d_perm)
        self._stale_columns.clear()
        self._core_cache = None

    def _correction(self) -> dict:
        """Per-batch Woodbury pieces: touched columns, W^-1 D, core inverse."""
        self._refresh_stale_columns()
        if self._core_cache is not None:
            return self._core_cache
        base = self._base
        columns = sorted(self._dirty_columns)
        r = len(columns)
        position = base._perm.position
        w_inv_d = (
            np.column_stack([self._wd_columns[u] for u in columns])
            if r
            else np.zeros((self.graph.n_nodes, 0), dtype=np.float64)
        )
        touched_positions = position[np.asarray(columns, dtype=np.int64)]
        core = np.eye(r) / (1.0 - self.c) - w_inv_d[touched_positions, :]
        self._core_cache = {
            "columns": columns,
            "w_inv_d": w_inv_d,
            "core_inv": np.linalg.inv(core),
            "touched_positions": touched_positions,
        }
        return self._core_cache

    def _corrected_vector(self, y0_perm: np.ndarray) -> np.ndarray:
        """Exact proximity vector for restart workspace ``y0`` (permuted).

        ``c · W'^{-1} y0`` via the Woodbury identity, returned in
        original node order.  Callers must ensure at least one update is
        pending (otherwise use the base index's pruned path).
        """
        base = self._base
        w_inv_q = self._w_inverse_product(y0_perm)
        pieces = self._correction()
        if pieces["columns"]:
            coefficients = pieces["core_inv"] @ w_inv_q[pieces["touched_positions"]]
            w_inv_q = w_inv_q + pieces["w_inv_d"] @ coefficients
        return base._perm.unpermute_vector(self.c * w_inv_q)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def proximity_column(self, query: int) -> np.ndarray:
        """Exact proximity vector under all pending updates."""
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        base = self._base
        if not self._dirty_columns:
            return base.proximity_column(query)
        e_q = np.zeros(n, dtype=np.float64)
        e_q[int(base._perm.position[query])] = 1.0
        return self._corrected_vector(e_q)

    def top_k(self, query: int, k: int = 5) -> TopKResult:
        """Exact top-k under pending updates.

        With an empty update batch this delegates to the base index's
        pruned search; otherwise it ranks the corrected full vector
        (``n_computed = n`` reflects the exhaustive cost — call
        :meth:`rebuild` to restore pruning).
        """
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        k = check_k(k)
        if not self._dirty_columns:
            return self._base.top_k(query, k)
        vector = self.proximity_column(query)
        items = tuple(top_k_from_vector(vector, min(k, n)))
        return self._exhaustive_result(query, k, items)

    def above_threshold(self, query: int, threshold: float) -> TopKResult:
        """All nodes with proximity ≥ ``threshold``, exact under updates.

        Clean-state calls delegate to the base index's pruned scan;
        pending updates switch to the corrected full vector.
        """
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        threshold = check_threshold(threshold)
        if not self._dirty_columns:
            return self._base.above_threshold(query, threshold)
        vector = self.proximity_column(query)
        qualifying = np.flatnonzero(vector >= threshold)
        items = tuple(
            top_k_from_vector(vector, n)[: qualifying.size]
        )
        return self._exhaustive_result(query, len(items), items)

    def top_k_personalized(self, restart, k: int = 5) -> TopKResult:
        """Exact top-k for a weighted restart set, under pending updates."""
        n = self.graph.n_nodes
        k = check_k(k)
        shares = check_restart_set(restart, n)
        if not self._dirty_columns:
            return self._base.top_k_personalized(shares, k)
        base = self._base
        y0 = np.zeros(n, dtype=np.float64)
        for node, share in shares.items():
            y0[int(base._perm.position[node])] += share
        vector = self._corrected_vector(y0)
        items = tuple(top_k_from_vector(vector, min(k, n)))
        return self._exhaustive_result(min(shares), k, items)

    def _exhaustive_result(
        self, query: int, k: int, items: Tuple[Tuple[int, float], ...]
    ) -> TopKResult:
        """Wrap corrected-path answers with exhaustive-cost counters."""
        n = self.graph.n_nodes
        return TopKResult(
            query=query,
            k=k,
            items=items,
            n_visited=n,
            n_computed=n,
            n_pruned=0,
            terminated_early=False,
            padded=len(items) < k,
        )
