"""Top-k query results with search statistics.

:class:`TopKResult` is what every search method in this library returns —
K-dash, the ablations, and the baselines — so the evaluation harness can
treat them uniformly.  Besides the ranked ``(node, proximity)`` pairs it
carries the counters behind the paper's Figures 7 and 9: how many nodes
were visited, how many exact proximity computations were spent, and
whether the bound-based early termination fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TopKResult:
    """Result of a top-k proximity search.

    Attributes
    ----------
    query:
        The query node.
    k:
        The requested number of answers.
    items:
        Ranked ``(node, proximity)`` pairs, descending proximity with
        ascending node id breaking ties.  May contain fewer than ``k``
        items only when the graph itself has fewer than ``k`` nodes; it
        contains zero-proximity nodes when fewer than ``k`` nodes are
        reachable from the query (the paper pads with "dummy nodes").
    n_visited:
        Nodes whose upper bound was evaluated.
    n_computed:
        Nodes whose *exact* proximity was computed — the Figure 9 metric.
    n_pruned:
        Scheduled nodes skipped thanks to early termination.
    terminated_early:
        Whether the Lemma 2 cut-off fired before the schedule ended.
    padded:
        Whether zero-proximity nodes were appended to reach ``k``.
    error_bound:
        Certified upper bound on the absolute error of every returned
        proximity.  Exactly ``0.0`` for exact answers (every
        pre-existing path); a ``best_effort`` precision-tier answer
        (:mod:`repro.query.approx`) carries its cumulative
        power-iteration residual bound here.
    """

    query: int
    k: int
    items: Tuple[Tuple[int, float], ...]
    n_visited: int = 0
    n_computed: int = 0
    n_pruned: int = 0
    terminated_early: bool = False
    padded: bool = False
    error_bound: float = 0.0

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        """Answer node ids in rank order."""
        return [node for node, _ in self.items]

    @property
    def proximities(self) -> List[float]:
        """Answer proximities in rank order."""
        return [p for _, p in self.items]

    @property
    def kth_proximity(self) -> float:
        """Proximity of the last returned item (0.0 for empty results)."""
        if not self.items:
            return 0.0
        return self.items[-1][1]

    def node_set(self) -> set:
        """The answer nodes as a set."""
        return {node for node, _ in self.items}

    def with_labels(self, graph) -> List[Tuple[str, float]]:
        """Answers as ``(label, proximity)`` pairs for presentation."""
        return [(graph.label_of(node), p) for node, p in self.items]

    def __len__(self) -> int:
        return len(self.items)


def rank_items(pairs: Sequence[Tuple[int, float]], k: int) -> Tuple[Tuple[int, float], ...]:
    """Canonically rank ``(node, proximity)`` pairs and truncate to ``k``.

    Descending proximity, ascending node id on ties — the same ordering
    as :func:`repro.rwr.proximity.top_k_from_vector`, so results from
    different methods compare elementwise.
    """
    if not pairs:
        return ()
    nodes = np.asarray([n for n, _ in pairs], dtype=np.int64)
    prox = np.asarray([p for _, p in pairs], dtype=np.float64)
    order = np.lexsort((nodes, -prox))[:k]
    return tuple((int(nodes[i]), float(prox[i])) for i in order)


def pad_items(
    ranked: Tuple[Tuple[int, float], ...], k: int, n: int
) -> Tuple[Tuple[Tuple[int, float], ...], bool]:
    """Fill ``ranked`` up to ``min(k, n)`` items with zero-proximity nodes.

    Matches the brute-force canonical ordering: nodes unreachable from
    the query have proximity exactly 0 and rank after every reachable
    node, tie-broken by ascending id (the paper pads with "dummy
    nodes").  Returns ``(items, padded)``.
    """
    want = min(k, n)
    if len(ranked) >= want:
        return tuple(ranked[:want]), False
    present = {node for node, _ in ranked}
    extra = []
    for node in range(n):
        if node not in present:
            extra.append((node, 0.0))
            if len(ranked) + len(extra) == want:
                break
    return tuple(ranked) + tuple(extra), True
