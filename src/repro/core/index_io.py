"""Index persistence: save / load a built K-dash index.

The paper's precomputation (reordering + LU + triangular inversion) is
the expensive part; queries are sub-millisecond.  Persisting the index
makes the precomputation a one-time cost per graph, the deployment model
the paper assumes ("if we precompute and store ... we can get the
proximities efficiently").

Format: a single ``.npz`` archive holding the permutation, both sparse
inverses (CSC/CSR triples), the estimator arrays, the restart
probability, and the graph's weighted edge list (needed to rebuild the
BFS schedule at query time).

Three format versions exist:

- **v1** stored only the factor state; loading re-derived every
  query-invariant cache (successor lists, per-query proximity mass, the
  :class:`~repro.query.prepared.PreparedIndex` mirrors).
- **v2** (current single-index format) additionally persists the
  ``PreparedIndex`` query-invariant caches — the flattened successor
  lists and the exact per-query proximity mass ``S(q)`` — so a loading
  process (e.g. a replica-pool worker adopting a published snapshot)
  skips the re-preparation work entirely.
- **v3** (sharded) is a **manifest plus one payload file per shard**,
  written by :func:`save_sharded_index`.  The manifest
  (``<stem>.npz``) holds the shard-invariant state every participant
  needs — the seed-side ``L^-1`` triple, the permutation ``position``,
  the exact proximity mass, the node→shard ``assignment``, the
  partitioner spec, and the per-shard :class:`ShardSummary` arrays
  (``colmax`` bound vectors, row-norm maxima, boundary fractions) —
  plus the basenames of the shard files.  Each shard file
  (``<stem>.shard<NNN>.npz``) holds only that shard's scan payload:
  its members, their scan order/norms and their ``U^-1`` rows as a
  concatenated CSR triple.  A gather node loads everything
  (:func:`load_sharded_index`); a shard worker passes ``only={i}`` and
  loads the manifest plus its own payload.  A manifest referencing a
  shard file that is missing (or unreadable) raises a clear
  :class:`~repro.exceptions.SerializationError` naming both files.

v1 archives load transparently (their caches are rebuilt on load);
archives from *future* versions are rejected with a clear
:class:`~repro.exceptions.SerializationError` instead of a numpy
``KeyError`` deep in the arrays, and v3 manifests fed to
:func:`load_index` (or v1/v2 archives fed to
:func:`load_sharded_index`) are redirected with an explicit message
rather than a shape error.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

import numpy as np

from ..exceptions import IndexNotBuiltError, SerializationError
from ..graph.digraph import DiGraph
from ..ordering.permutation import Permutation
from ..sparse import CSCMatrix, CSRMatrix
from .kdash import KDash
from .sharded import ShardIndex, ShardSummary, ShardedIndex

_FORMAT_VERSION = 2

#: Single-index versions :func:`load_index` knows how to read.
_READABLE_VERSIONS = (1, 2)

#: The sharded manifest-plus-payloads format of :func:`save_sharded_index`.
_SHARDED_FORMAT_VERSION = 3


def save_index(index, path: str) -> None:
    """Serialise a built index to ``path`` (numpy ``.npz``, format v2).

    Accepts a built :class:`~repro.core.kdash.KDash` or a
    :class:`~repro.core.dynamic.DynamicKDash` whose update batch has
    been fully compacted (``rebuild()`` flattens pending corrections
    into the base index).

    Raises
    ------
    IndexNotBuiltError
        If ``index.build()`` has not run.
    SerializationError
        On I/O failure, or when ``index`` is a dynamic wrapper with
        pending uncompacted corrections — persisting its base index
        would silently drop those updates from the archive.
    """
    # Duck-typed dynamic detection (mirrors QueryEngine): a DynamicKDash
    # exposes base_index + n_pending_columns, a plain KDash does not.
    if hasattr(index, "base_index"):
        pending = index.n_pending_columns
        if pending:
            raise SerializationError(
                f"cannot save a DynamicKDash with {pending} pending corrected "
                f"column{'s' if pending != 1 else ''}: the base index does not "
                "reflect the applied updates yet; call rebuild() to compact "
                "them first"
            )
        index = index.base_index
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that has not been built")
    graph = index.graph
    edges = list(graph.edges())
    src = np.asarray([u for u, _, _ in edges], dtype=np.int64)
    dst = np.asarray([v for _, v, _ in edges], dtype=np.int64)
    wgt = np.asarray([w for _, _, w in edges], dtype=np.float64)
    labels = np.asarray(graph.labels if graph.labels is not None else [], dtype=object)
    # The PreparedIndex caches, flattened for the archive: successor
    # lists as a CSR-style (indptr, indices) pair, the proximity mass as
    # a dense vector.  Persisting them verbatim (instead of re-deriving
    # on load) both skips the preparation cost and guarantees the loaded
    # index scans nodes in the exact order the saved one did.
    succ_lists = index._succ_lists
    succ_indptr = np.zeros(graph.n_nodes + 1, dtype=np.int64)
    np.cumsum([len(s) for s in succ_lists], out=succ_indptr[1:])
    succ_indices = np.asarray(
        [v for s in succ_lists for v in s], dtype=np.int64
    )
    try:
        np.savez_compressed(
            path,
            format_version=_FORMAT_VERSION,
            n_nodes=graph.n_nodes,
            c=index.c,
            position=index._perm.position,
            l_inv_indptr=index._l_inv.indptr,
            l_inv_indices=index._l_inv.indices,
            l_inv_data=index._l_inv.data,
            u_inv_indptr=index._u_inv.indptr,
            u_inv_indices=index._u_inv.indices,
            u_inv_data=index._u_inv.data,
            amax_col=index._amax_col,
            amax=index._amax,
            diag=index._diag,
            edge_src=src,
            edge_dst=dst,
            edge_weight=wgt,
            labels=labels,
            succ_indptr=succ_indptr,
            succ_indices=succ_indices,
            total_mass_perm=index._total_mass_perm,
            allow_pickle=True,
        )
    except OSError as exc:
        raise SerializationError(f"cannot write index to {path!r}: {exc}") from exc


def load_index(path: str) -> KDash:
    """Load an index previously written by :func:`save_index`.

    The returned object is query-ready (``is_built`` is ``True``); its
    ``build_report`` is ``None`` because the precomputation happened in a
    previous process.  v2 archives restore the persisted
    :class:`~repro.query.prepared.PreparedIndex` caches directly; v1
    archives rebuild them on load.
    """
    import pickle
    import zipfile

    try:
        archive = np.load(path, allow_pickle=True)
    except (OSError, ValueError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read index from {path!r}: {exc}") from exc
    try:
        version = int(archive["format_version"])
    except KeyError:
        raise SerializationError(
            f"index archive {path!r} carries no format_version: not an "
            "archive written by save_index"
        ) from None
    if version == _SHARDED_FORMAT_VERSION:
        raise SerializationError(
            f"index archive {path!r} is a format-v3 sharded manifest; "
            "load it with load_sharded_index()"
        )
    if version not in _READABLE_VERSIONS:
        raise SerializationError(
            f"index archive {path!r} has format version {version}; this "
            f"build reads versions {_READABLE_VERSIONS} — the archive was "
            "written by a newer release"
        )
    n = int(archive["n_nodes"])
    labels_arr = archive["labels"]
    labels = [str(x) for x in labels_arr] if labels_arr.size else None
    graph = DiGraph(n, labels=labels)
    for u, v, w in zip(archive["edge_src"], archive["edge_dst"], archive["edge_weight"]):
        graph.add_edge(int(u), int(v), float(w))

    index = KDash(graph, c=float(archive["c"]))
    index._perm = Permutation(archive["position"])
    index._l_inv = CSCMatrix(
        (n, n),
        archive["l_inv_indptr"],
        archive["l_inv_indices"],
        archive["l_inv_data"],
    )
    index._u_inv = CSRMatrix(
        (n, n),
        archive["u_inv_indptr"],
        archive["u_inv_indices"],
        archive["u_inv_data"],
    )
    index._amax_col = np.asarray(archive["amax_col"], dtype=np.float64)
    index._amax = float(archive["amax"])
    index._diag = np.asarray(archive["diag"], dtype=np.float64)

    if version >= 2:
        # Restore the persisted PreparedIndex caches: unflatten the
        # successor lists and hand the proximity mass straight through —
        # no adjacency conversion, no triangular products.
        indptr = np.asarray(archive["succ_indptr"], dtype=np.int64)
        indices = archive["succ_indices"].tolist()
        succ_lists = [
            indices[indptr[u] : indptr[u + 1]] for u in range(n)
        ]
        index._finalise_query_path(
            succ_lists=succ_lists,
            total_mass_perm=archive["total_mass_perm"],
        )
    else:
        # v1 archive: rebuild the query-path acceleration structures
        # (scipy copies, successor lists, total proximity mass,
        # PreparedIndex) exactly as build() does.  Sets index._built.
        index._finalise_query_path()
    return index


# ----------------------------------------------------------------------
# Format v3: sharded manifest + per-shard payloads
# ----------------------------------------------------------------------
def read_format_version(path: str) -> int:
    """The ``format_version`` of an archive, without loading its payload.

    Lets callers (e.g. the CLI) dispatch between :func:`load_index`
    (v1/v2) and :func:`load_sharded_index` (v3) on any saved artefact.
    """
    import pickle
    import zipfile

    try:
        with np.load(path, allow_pickle=True) as archive:
            return int(archive["format_version"])
    except (OSError, ValueError, KeyError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"cannot read a format version from {path!r}: {exc}"
        ) from exc


def _shard_filename(manifest_path: str, shard_id: int) -> str:
    """``foo.npz`` → ``foo.shard007.npz`` (next to the manifest)."""
    stem = manifest_path[:-4] if manifest_path.endswith(".npz") else manifest_path
    return f"{stem}.shard{shard_id:03d}.npz"


def _atomic_savez(path: str, **arrays) -> None:
    """Write an ``.npz`` via a same-directory temp name + rename."""
    tmp = f"{path}.tmp-{os.getpid()}.npz"
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    except OSError as exc:
        raise SerializationError(f"cannot write {path!r}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def save_sharded_index(sharded: ShardedIndex, path: str) -> list:
    """Serialise a :class:`~repro.core.sharded.ShardedIndex` (format v3).

    Writes the shard payload files first and the manifest **last**, each
    through an atomic same-directory rename: a reader that can open the
    manifest is guaranteed to find every payload it references.  If the
    manifest cannot be written (or any later payload fails), the
    payloads already written under their final names are removed before
    the error propagates, so a failed save leaves no orphans.  Every
    shard payload must be loaded (a manifest-only / partial
    ``ShardedIndex`` cannot be re-saved).

    Returns the list of written paths, manifest last.
    """
    if path.endswith(".npz") and len(path) <= 4:
        raise SerializationError(f"cannot derive shard filenames from {path!r}")
    manifest_path = path if path.endswith(".npz") else f"{path}.npz"
    for shard_id, payload in enumerate(sharded.shards):
        if payload is None:
            raise SerializationError(
                f"cannot save a partially loaded ShardedIndex: shard "
                f"{shard_id} has no payload in this process"
            )
    written = []
    shard_files = []
    try:
        for shard_id in range(sharded.n_shards):
            payload = sharded.shards[shard_id]
            shard_path = _shard_filename(manifest_path, shard_id)
            _atomic_savez(
                shard_path,
                format_version=_SHARDED_FORMAT_VERSION,
                shard_id=shard_id,
                members=payload.members,
                scan_nodes=np.asarray(payload.scan_nodes, dtype=np.int64),
                scan_norms=np.asarray(payload.scan_norms, dtype=np.float64),
                row_indptr=np.asarray(payload.row_indptr, dtype=np.int64),
                row_indices=payload.row_indices,
                row_data=payload.row_data,
            )
            shard_files.append(os.path.basename(shard_path))
            written.append(shard_path)
        labels = np.asarray(
            sharded.labels if sharded.labels is not None else [], dtype=object
        )
        _write_manifest(manifest_path, sharded, shard_files, labels)
    except BaseException:
        for partial in written:
            try:
                os.remove(partial)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        raise
    written.append(manifest_path)
    return written


def _write_manifest(manifest_path, sharded, shard_files, labels) -> None:
    _atomic_savez(
        manifest_path,
        format_version=_SHARDED_FORMAT_VERSION,
        n_nodes=sharded.n,
        c=sharded.c,
        n_shards=sharded.n_shards,
        partitioner=sharded.partitioner,
        shard_seed=sharded.seed,
        assignment=sharded.assignment,
        position=np.asarray(sharded.position, dtype=np.int64),
        l_inv_indptr=sharded.l_inv.indptr,
        l_inv_indices=sharded.l_inv.indices,
        l_inv_data=sharded.l_inv.data,
        total_mass_perm=sharded.total_mass_perm,
        shard_files=np.asarray(shard_files, dtype=object),
        summary_n_members=np.asarray(
            [s.n_members for s in sharded.summaries], dtype=np.int64
        ),
        summary_rownorm_max=np.asarray(
            [s.rownorm_max for s in sharded.summaries], dtype=np.float64
        ),
        summary_boundary_frac=np.asarray(
            [s.boundary_frac for s in sharded.summaries], dtype=np.float64
        ),
        summary_colmax=np.vstack(
            [s.colmax for s in sharded.summaries]
        )
        if sharded.summaries
        else np.zeros((0, sharded.n)),
        labels=labels,
        allow_pickle=True,
    )


def load_sharded_index(
    path: str, only: Optional[Iterable[int]] = None
) -> ShardedIndex:
    """Load a format-v3 sharded manifest written by :func:`save_sharded_index`.

    Parameters
    ----------
    path:
        The manifest archive.
    only:
        Shard ids whose payload files to load; every other entry of
        ``ShardedIndex.shards`` stays ``None`` (manifest-only).  A shard
        worker passes its own id; the default loads everything, which is
        what an in-process :class:`~repro.query.planner.ScatterGatherPlanner`
        needs.

    Raises
    ------
    SerializationError
        On unreadable archives, wrong format versions, and — explicitly,
        instead of a ``KeyError``/``FileNotFoundError`` from deep inside
        numpy — when the manifest references a shard file that is
        missing or unreadable.
    """
    import pickle
    import zipfile

    try:
        manifest = np.load(path, allow_pickle=True)
    except (OSError, ValueError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read manifest from {path!r}: {exc}") from exc
    try:
        version = int(manifest["format_version"])
    except KeyError:
        raise SerializationError(
            f"archive {path!r} carries no format_version: not a manifest "
            "written by save_sharded_index"
        ) from None
    if version in _READABLE_VERSIONS:
        raise SerializationError(
            f"index archive {path!r} has single-index format version "
            f"{version}; load it with load_index() (or re-save it with "
            "save_sharded_index after sharding)"
        )
    if version != _SHARDED_FORMAT_VERSION:
        raise SerializationError(
            f"sharded manifest {path!r} has format version {version}; this "
            f"build reads version {_SHARDED_FORMAT_VERSION} — the archive "
            "was written by a newer release"
        )
    n = int(manifest["n_nodes"])
    n_shards = int(manifest["n_shards"])
    only_set = None if only is None else {int(s) for s in only}
    if only_set is not None:
        bad = [s for s in only_set if not (0 <= s < n_shards)]
        if bad:
            raise SerializationError(
                f"manifest {path!r} has {n_shards} shards; requested "
                f"shard ids {sorted(bad)} do not exist"
            )
    l_inv = CSCMatrix(
        (n, n),
        manifest["l_inv_indptr"],
        manifest["l_inv_indices"],
        manifest["l_inv_data"],
    )
    colmax = np.asarray(manifest["summary_colmax"], dtype=np.float64)
    summaries = [
        ShardSummary(
            shard_id=shard_id,
            n_members=int(manifest["summary_n_members"][shard_id]),
            rownorm_max=float(manifest["summary_rownorm_max"][shard_id]),
            boundary_frac=float(manifest["summary_boundary_frac"][shard_id]),
            colmax=colmax[shard_id],
        )
        for shard_id in range(n_shards)
    ]
    directory = os.path.dirname(os.path.abspath(path))
    shard_files = [str(name) for name in manifest["shard_files"]]
    shards = []
    for shard_id in range(n_shards):
        if only_set is not None and shard_id not in only_set:
            shards.append(None)
            continue
        shard_path = os.path.join(directory, shard_files[shard_id])
        if not os.path.exists(shard_path):
            raise SerializationError(
                f"shard manifest {path!r} references missing shard file "
                f"{shard_files[shard_id]!r} (expected at {shard_path!r})"
            )
        try:
            payload = np.load(shard_path, allow_pickle=True)
        except (OSError, ValueError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
            raise SerializationError(
                f"shard manifest {path!r} references unreadable shard file "
                f"{shard_path!r}: {exc}"
            ) from exc
        if int(payload["shard_id"]) != shard_id:
            raise SerializationError(
                f"shard file {shard_path!r} carries shard id "
                f"{int(payload['shard_id'])}, expected {shard_id}"
            )
        shards.append(
            ShardIndex(
                shard_id,
                payload["members"],
                payload["scan_nodes"].tolist(),
                payload["scan_norms"].tolist(),
                payload["row_indptr"],
                payload["row_indices"],
                payload["row_data"],
            )
        )
    labels_arr = manifest["labels"]
    labels = [str(x) for x in labels_arr] if labels_arr.size else None
    return ShardedIndex(
        n=n,
        c=float(manifest["c"]),
        assignment=manifest["assignment"],
        partitioner=str(manifest["partitioner"]),
        seed=int(manifest["shard_seed"]),
        position=np.asarray(manifest["position"], dtype=np.int64).tolist(),
        l_inv=l_inv,
        total_mass_perm=manifest["total_mass_perm"],
        shards=shards,
        summaries=summaries,
        labels=labels,
    )
