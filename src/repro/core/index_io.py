"""Index persistence: save / load a built K-dash index.

The paper's precomputation (reordering + LU + triangular inversion) is
the expensive part; queries are sub-millisecond.  Persisting the index
makes the precomputation a one-time cost per graph, the deployment model
the paper assumes ("if we precompute and store ... we can get the
proximities efficiently").

Format: a single ``.npz`` archive holding the permutation, both sparse
inverses (CSC/CSR triples), the estimator arrays, the restart
probability, and the graph's weighted edge list (needed to rebuild the
BFS schedule at query time).

Two format versions exist:

- **v1** stored only the factor state; loading re-derived every
  query-invariant cache (successor lists, per-query proximity mass, the
  :class:`~repro.query.prepared.PreparedIndex` mirrors).
- **v2** (current) additionally persists the ``PreparedIndex``
  query-invariant caches — the flattened successor lists and the exact
  per-query proximity mass ``S(q)`` — so a loading process (e.g. a
  replica-pool worker adopting a published snapshot) skips the
  re-preparation work entirely.

v1 archives load transparently (their caches are rebuilt on load);
archives from *future* versions are rejected with a clear
:class:`~repro.exceptions.SerializationError` instead of a numpy
``KeyError`` deep in the arrays.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import IndexNotBuiltError, SerializationError
from ..graph.digraph import DiGraph
from ..ordering.permutation import Permutation
from ..sparse import CSCMatrix, CSRMatrix
from .kdash import KDash

_FORMAT_VERSION = 2

#: Versions this module knows how to read.
_READABLE_VERSIONS = (1, 2)


def save_index(index, path: str) -> None:
    """Serialise a built index to ``path`` (numpy ``.npz``, format v2).

    Accepts a built :class:`~repro.core.kdash.KDash` or a
    :class:`~repro.core.dynamic.DynamicKDash` whose update batch has
    been fully compacted (``rebuild()`` flattens pending corrections
    into the base index).

    Raises
    ------
    IndexNotBuiltError
        If ``index.build()`` has not run.
    SerializationError
        On I/O failure, or when ``index`` is a dynamic wrapper with
        pending uncompacted corrections — persisting its base index
        would silently drop those updates from the archive.
    """
    # Duck-typed dynamic detection (mirrors QueryEngine): a DynamicKDash
    # exposes base_index + n_pending_columns, a plain KDash does not.
    if hasattr(index, "base_index"):
        pending = index.n_pending_columns
        if pending:
            raise SerializationError(
                f"cannot save a DynamicKDash with {pending} pending corrected "
                f"column{'s' if pending != 1 else ''}: the base index does not "
                "reflect the applied updates yet; call rebuild() to compact "
                "them first"
            )
        index = index.base_index
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that has not been built")
    graph = index.graph
    edges = list(graph.edges())
    src = np.asarray([u for u, _, _ in edges], dtype=np.int64)
    dst = np.asarray([v for _, v, _ in edges], dtype=np.int64)
    wgt = np.asarray([w for _, _, w in edges], dtype=np.float64)
    labels = np.asarray(graph.labels if graph.labels is not None else [], dtype=object)
    # The PreparedIndex caches, flattened for the archive: successor
    # lists as a CSR-style (indptr, indices) pair, the proximity mass as
    # a dense vector.  Persisting them verbatim (instead of re-deriving
    # on load) both skips the preparation cost and guarantees the loaded
    # index scans nodes in the exact order the saved one did.
    succ_lists = index._succ_lists
    succ_indptr = np.zeros(graph.n_nodes + 1, dtype=np.int64)
    np.cumsum([len(s) for s in succ_lists], out=succ_indptr[1:])
    succ_indices = np.asarray(
        [v for s in succ_lists for v in s], dtype=np.int64
    )
    try:
        np.savez_compressed(
            path,
            format_version=_FORMAT_VERSION,
            n_nodes=graph.n_nodes,
            c=index.c,
            position=index._perm.position,
            l_inv_indptr=index._l_inv.indptr,
            l_inv_indices=index._l_inv.indices,
            l_inv_data=index._l_inv.data,
            u_inv_indptr=index._u_inv.indptr,
            u_inv_indices=index._u_inv.indices,
            u_inv_data=index._u_inv.data,
            amax_col=index._amax_col,
            amax=index._amax,
            diag=index._diag,
            edge_src=src,
            edge_dst=dst,
            edge_weight=wgt,
            labels=labels,
            succ_indptr=succ_indptr,
            succ_indices=succ_indices,
            total_mass_perm=index._total_mass_perm,
            allow_pickle=True,
        )
    except OSError as exc:
        raise SerializationError(f"cannot write index to {path!r}: {exc}") from exc


def load_index(path: str) -> KDash:
    """Load an index previously written by :func:`save_index`.

    The returned object is query-ready (``is_built`` is ``True``); its
    ``build_report`` is ``None`` because the precomputation happened in a
    previous process.  v2 archives restore the persisted
    :class:`~repro.query.prepared.PreparedIndex` caches directly; v1
    archives rebuild them on load.
    """
    import pickle
    import zipfile

    try:
        archive = np.load(path, allow_pickle=True)
    except (OSError, ValueError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read index from {path!r}: {exc}") from exc
    version = int(archive["format_version"])
    if version not in _READABLE_VERSIONS:
        raise SerializationError(
            f"index archive {path!r} has format version {version}; this "
            f"build reads versions {_READABLE_VERSIONS} — the archive was "
            "written by a newer release"
        )
    n = int(archive["n_nodes"])
    labels_arr = archive["labels"]
    labels = [str(x) for x in labels_arr] if labels_arr.size else None
    graph = DiGraph(n, labels=labels)
    for u, v, w in zip(archive["edge_src"], archive["edge_dst"], archive["edge_weight"]):
        graph.add_edge(int(u), int(v), float(w))

    index = KDash(graph, c=float(archive["c"]))
    index._perm = Permutation(archive["position"])
    index._l_inv = CSCMatrix(
        (n, n),
        archive["l_inv_indptr"],
        archive["l_inv_indices"],
        archive["l_inv_data"],
    )
    index._u_inv = CSRMatrix(
        (n, n),
        archive["u_inv_indptr"],
        archive["u_inv_indices"],
        archive["u_inv_data"],
    )
    index._amax_col = np.asarray(archive["amax_col"], dtype=np.float64)
    index._amax = float(archive["amax"])
    index._diag = np.asarray(archive["diag"], dtype=np.float64)

    if version >= 2:
        # Restore the persisted PreparedIndex caches: unflatten the
        # successor lists and hand the proximity mass straight through —
        # no adjacency conversion, no triangular products.
        indptr = np.asarray(archive["succ_indptr"], dtype=np.int64)
        indices = archive["succ_indices"].tolist()
        succ_lists = [
            indices[indptr[u] : indptr[u + 1]] for u in range(n)
        ]
        index._finalise_query_path(
            succ_lists=succ_lists,
            total_mass_perm=archive["total_mass_perm"],
        )
    else:
        # v1 archive: rebuild the query-path acceleration structures
        # (scipy copies, successor lists, total proximity mass,
        # PreparedIndex) exactly as build() does.  Sets index._built.
        index._finalise_query_path()
    return index
