"""Index persistence: save / load a built K-dash index.

The paper's precomputation (reordering + LU + triangular inversion) is
the expensive part; queries are sub-millisecond.  Persisting the index
makes the precomputation a one-time cost per graph, the deployment model
the paper assumes ("if we precompute and store ... we can get the
proximities efficiently").

Format: a single ``.npz`` archive holding the permutation, both sparse
inverses (CSC/CSR triples), the estimator arrays, the restart
probability, and the graph's weighted edge list (needed to rebuild the
BFS schedule at query time).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import IndexNotBuiltError, SerializationError
from ..graph.digraph import DiGraph
from ..ordering.permutation import Permutation
from ..sparse import CSCMatrix, CSRMatrix
from .kdash import KDash

_FORMAT_VERSION = 1


def save_index(index: KDash, path: str) -> None:
    """Serialise a built index to ``path`` (numpy ``.npz``).

    Raises
    ------
    IndexNotBuiltError
        If ``index.build()`` has not run.
    SerializationError
        On I/O failure.
    """
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that has not been built")
    graph = index.graph
    edges = list(graph.edges())
    src = np.asarray([u for u, _, _ in edges], dtype=np.int64)
    dst = np.asarray([v for _, v, _ in edges], dtype=np.int64)
    wgt = np.asarray([w for _, _, w in edges], dtype=np.float64)
    labels = np.asarray(graph.labels if graph.labels is not None else [], dtype=object)
    try:
        np.savez_compressed(
            path,
            format_version=_FORMAT_VERSION,
            n_nodes=graph.n_nodes,
            c=index.c,
            position=index._perm.position,
            l_inv_indptr=index._l_inv.indptr,
            l_inv_indices=index._l_inv.indices,
            l_inv_data=index._l_inv.data,
            u_inv_indptr=index._u_inv.indptr,
            u_inv_indices=index._u_inv.indices,
            u_inv_data=index._u_inv.data,
            amax_col=index._amax_col,
            amax=index._amax,
            diag=index._diag,
            edge_src=src,
            edge_dst=dst,
            edge_weight=wgt,
            labels=labels,
            allow_pickle=True,
        )
    except OSError as exc:
        raise SerializationError(f"cannot write index to {path!r}: {exc}") from exc


def load_index(path: str) -> KDash:
    """Load an index previously written by :func:`save_index`.

    The returned object is query-ready (``is_built`` is ``True``); its
    ``build_report`` is ``None`` because the precomputation happened in a
    previous process.
    """
    import pickle
    import zipfile

    try:
        archive = np.load(path, allow_pickle=True)
    except (OSError, ValueError, EOFError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read index from {path!r}: {exc}") from exc
    version = int(archive["format_version"])
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"index format version {version} not supported (expected {_FORMAT_VERSION})"
        )
    n = int(archive["n_nodes"])
    labels_arr = archive["labels"]
    labels = [str(x) for x in labels_arr] if labels_arr.size else None
    graph = DiGraph(n, labels=labels)
    for u, v, w in zip(archive["edge_src"], archive["edge_dst"], archive["edge_weight"]):
        graph.add_edge(int(u), int(v), float(w))

    index = KDash(graph, c=float(archive["c"]))
    index._perm = Permutation(archive["position"])
    index._l_inv = CSCMatrix(
        (n, n),
        archive["l_inv_indptr"],
        archive["l_inv_indices"],
        archive["l_inv_data"],
    )
    index._u_inv = CSRMatrix(
        (n, n),
        archive["u_inv_indptr"],
        archive["u_inv_indices"],
        archive["u_inv_data"],
    )
    index._amax_col = np.asarray(archive["amax_col"], dtype=np.float64)
    index._amax = float(archive["amax"])
    index._diag = np.asarray(archive["diag"], dtype=np.float64)

    # Rebuild the query-path acceleration structures (scipy copies,
    # successor lists, total proximity mass, PreparedIndex) exactly as
    # build() does — they are derived data, cheaper to recompute than to
    # store.  Sets index._built.
    index._finalise_query_path()
    return index
