"""The tree-based proximity upper bound (Section 4.3, Definitions 1–2).

For a node ``u`` visited in ascending layer order, the paper bounds its
proximity by

.. math::

    \\bar p_u = c' \\Bigl( \\underbrace{\\sum_{v \\in V_{l_u-1}(u)} p_v A_{max}(v)}_{t_1}
             + \\underbrace{\\sum_{v \\in V_{l_u}(u)} p_v A_{max}(v)}_{t_2}
             + \\underbrace{\\bigl(1 - \\sum_{v \\in V_s} p_v\\bigr) A_{max}}_{t_3} \\Bigr)

with ``c' = (1-c)/(1 - A_{uu} + c A_{uu})``.  The three terms cover,
respectively, selected nodes one layer above ``u``, selected nodes on
``u``'s own layer, and all still-unselected probability mass.  Lemma 1
proves :math:`\\bar p_u \\ge p_u`; Lemma 2 proves the bound is
non-increasing across layers, so the first visited node whose bound drops
below the running K-th best proximity terminates the whole search.

This class realises Definition 2's O(1) incremental maintenance:

- ``t1``/``t2`` shift when the visit advances a layer (``t1 ← t2; t2 ← 0``);
- recording a selected node adds ``p_u · A_{max}(u)`` to ``t2`` and ``p_u``
  to the selected-mass accumulator behind ``t3``.

Three deliberate deviations from the paper's letter (all documented in
DESIGN.md and required for soundness or tightness):

1. In Definition 2's ``u' = q`` case the paper writes ``(1-p_q)·Amax(u)``;
   Definition 1 requires the *global* ``Amax`` there, which is what this
   implementation uses (tracking the selected mass directly makes ``t3``
   exact under either reading).
2. With self-loops, ``c'`` varies per node and Lemma 2's monotonicity
   argument needs the *largest* ``c'`` to make termination safe; we use
   ``c'_max = (1-c)/(1-(1-c)·max_u A_{uu})`` for every bound.  On
   self-loop-free graphs (all paper datasets) this is exactly ``1-c``.
3. The paper's ``t3`` assumes ``Σ_v p_v = 1``, which fails on graphs with
   dangling nodes (zero transition columns leak walk mass).  The K-dash
   index precomputes the exact per-query total ``S(q) = c·1ᵀW⁻¹e_q`` and
   passes it as ``total_mass``; the bound stays valid *and* regains the
   tightness the paper's derivation intends.  With no dangling nodes
   ``S(q) = 1`` and the formulas coincide.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..validation import check_node_id, check_restart_probability


class ProximityEstimator:
    """Incrementally maintained upper bound on RWR proximities.

    Parameters
    ----------
    amax_col:
        ``Amax(v)`` per node: the maximum entry of column ``v`` of the
        transition matrix (largest one-step probability out of ``v``).
    amax:
        Global maximum ``Amax`` of the transition matrix.
    diag:
        Diagonal of the transition matrix (``A_uu``, self-loop mass).
    c:
        Restart probability.
    query:
        The query node ``q`` (its bound is the constant 1), or an
        iterable of seed nodes for a restart *set* (Personalized
        PageRank): every seed gets the trivial bound 1, and the
        Definition 1 derivation goes through unchanged because it never
        used ``|restart| = 1``.
    total_mass:
        Exact total proximity mass ``S`` of the restart vector (see the
        module notes on dangling nodes); 1.0 reproduces the paper.

    Usage protocol (enforced): for each node in the visit schedule call
    :meth:`step` once to obtain its bound; if the node is then selected
    (exact proximity computed) call :meth:`record` before stepping to the
    next node.
    """

    def __init__(
        self,
        amax_col: np.ndarray,
        amax: float,
        diag: np.ndarray,
        c: float,
        query: int,
        total_mass: float = 1.0,
    ) -> None:
        c = check_restart_probability(c)
        self._amax_col = np.asarray(amax_col, dtype=np.float64)
        n = self._amax_col.size
        self._amax = float(amax)
        diag = np.asarray(diag, dtype=np.float64)
        if diag.shape != (n,):
            raise InvalidParameterError(
                f"diag has shape {diag.shape}, expected ({n},)"
            )
        if isinstance(query, (int, np.integer)):
            seed_nodes = (int(query),)
        else:
            seed_nodes = tuple(int(q) for q in query)
            if not seed_nodes:
                raise InvalidParameterError("seed set must not be empty")
        self._unit_bound = frozenset(
            check_node_id(q, n, "query") for q in seed_nodes
        )
        self._query = min(self._unit_bound)
        max_diag = float(diag.max()) if n else 0.0
        # c'_max: sound for every node, exact (1-c) without self-loops.
        self._c_prime = (1.0 - c) / (1.0 - (1.0 - c) * max_diag)
        total_mass = float(total_mass)
        if not (0.0 <= total_mass <= 1.0 + 1e-9):
            raise InvalidParameterError(
                f"total_mass must lie in [0, 1], got {total_mass!r}"
            )
        # The paper's t3 uses total mass 1 ("since p_v is probability,
        # sum_{v not in Vs} p_v = 1 - sum_{v in Vs} p_v"), which holds
        # only for dangling-free graphs.  Passing the exact per-query
        # total sum(p) keeps the bound valid *and* tight when transition
        # columns leak mass; 1.0 reproduces the paper's bound verbatim.
        self._total_mass = total_mass
        self._t1 = 0.0
        self._t2 = 0.0
        self._selected_mass = 0.0
        self._current_layer: int = -1
        self._awaiting_record: int = -1

    # ------------------------------------------------------------------
    @property
    def c_prime(self) -> float:
        """The (maximal) multiplier ``c'`` applied to the bound terms."""
        return self._c_prime

    @property
    def unit_bound_nodes(self) -> frozenset:
        """The seed nodes whose bound is the trivial constant 1."""
        return self._unit_bound

    @property
    def selected_mass(self) -> float:
        """Total exact proximity mass of recorded (selected) nodes."""
        return self._selected_mass

    def bound_terms(self) -> tuple:
        """Current ``(t1, t2, t3)`` — exposed for tests of Definition 2."""
        t3 = (self._total_mass - self._selected_mass) * self._amax
        return self._t1, self._t2, t3

    # ------------------------------------------------------------------
    def step(self, node: int, layer: int) -> float:
        """Advance the visit to ``node`` on ``layer``; return its bound.

        Layers must be non-decreasing across calls (ascending-layer visit
        order is precisely what Lemma 2 requires).
        """
        if layer < self._current_layer:
            raise InvalidParameterError(
                f"visit order regressed from layer {self._current_layer} "
                f"to {layer}; the estimator requires ascending layers"
            )
        if layer == self._current_layer + 1:
            # Definition 2, layer-advance case: yesterday's own-layer sum
            # becomes today's layer-above sum.
            self._t1 = self._t2
            self._t2 = 0.0
        elif layer > self._current_layer + 1:
            # Layer skipped entirely (only possible with synthetic layers
            # from a root override): no selected node can sit one layer
            # above, so both terms reset (Lemma 2's l_u >= l_v - 2 case).
            self._t1 = 0.0
            self._t2 = 0.0
        self._current_layer = layer
        self._awaiting_record = node
        if node in self._unit_bound:
            return 1.0
        t3 = (self._total_mass - self._selected_mass) * self._amax
        return self._c_prime * (self._t1 + self._t2 + t3)

    def record(self, node: int, proximity: float) -> None:
        """Fold a selected node's exact proximity into the bound state."""
        if node != self._awaiting_record:
            raise InvalidParameterError(
                f"record({node}) without a preceding step({node}); "
                "the estimator protocol is step-then-record per node"
            )
        self._awaiting_record = -1
        self._t2 += proximity * self._amax_col[node]
        self._selected_mass += proximity
