"""K-dash: the exact top-k RWR search index (Sections 4.2–4.4).

Build phase (:meth:`KDash.build`):

1. reorder the nodes with one of the Section 4.2.2 heuristics;
2. form ``W = I - (1-c) A'`` over the reordered transition matrix;
3. LU-factorise ``W`` without pivoting (Equations 6–7);
4. invert the triangular factors sparsely (Equations 4–5), storing
   ``L^-1`` column-wise and ``U^-1`` row-wise;
5. precompute the estimator inputs ``Amax``, ``Amax(v)`` and ``A_vv``.

Query phase (:meth:`KDash.top_k`, Algorithm 4): scatter column ``q`` of
``L^-1`` into a dense workspace, walk the BFS tree of the query in
ascending layer order, maintain the Definition 2 upper bound in O(1) per
node, and evaluate ``p_u = c · U^-1[u,:] · y`` only while the bound stays
at or above the running K-th best proximity θ.  Lemmas 1–2 make the first
bound violation a certificate that *every* remaining node is out, so the
search stops — exactness without exhaustive computation (Theorem 2).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import DecompositionError, IndexNotBuiltError
from ..graph.digraph import DiGraph
from ..graph.matrices import column_normalized_adjacency, rwr_system_matrix
from ..lu.crout import crout_lu
from ..lu.fillin import FillInReport, fill_in_report
from ..lu.inverse import triangular_inverses
from ..lu.scipy_backend import superlu_lu
from ..ordering import ReorderingStrategy, get_reordering
from ..sparse import sparse_column_max
from ..sparse.csc import CSCMatrix
from ..validation import check_choice, check_k, check_node_id, check_restart_probability
from .bfs_tree import BFSTree
from .estimator import ProximityEstimator
from .topk import TopKResult, rank_items


@dataclass(frozen=True)
class BuildReport:
    """Timings and sizes recorded during :meth:`KDash.build`.

    ``reorder_seconds`` / ``lu_seconds`` / ``inverse_seconds`` decompose
    the precomputation cost (Figure 6); ``fill_in`` carries the nonzero
    accounting of Figure 5.
    """

    reorder_seconds: float
    lu_seconds: float
    inverse_seconds: float
    total_seconds: float
    fill_in: FillInReport
    lu_backend_used: str


class KDash:
    """Exact top-k random-walk-with-restart search.

    Parameters
    ----------
    graph:
        The weighted directed graph.
    c:
        Restart probability in ``(0, 1)``; the paper uses 0.95.
    reordering:
        ``"hybrid"`` (paper default), ``"degree"``, ``"cluster"``,
        ``"random"``, ``"identity"``, or a
        :class:`~repro.ordering.base.ReorderingStrategy` instance.
    lu_backend:
        ``"auto"`` (SuperLU with pure-Python fallback), ``"scipy"``, or
        ``"crout"`` (the from-scratch Equations 6–7 kernel).
    inverse_backend:
        Forwarded to :func:`repro.lu.inverse.triangular_inverses`.
    reordering_seed:
        Seed for the stochastic reorderings (Louvain sweeps / random).

    Examples
    --------
    >>> from repro.graph import star_graph
    >>> index = KDash(star_graph(4), c=0.9).build()
    >>> result = index.top_k(query=0, k=2)
    >>> result.nodes[0]
    0
    """

    def __init__(
        self,
        graph: DiGraph,
        c: float = 0.95,
        reordering="hybrid",
        lu_backend: str = "auto",
        inverse_backend: str = "auto",
        reordering_seed: int = 0,
    ) -> None:
        self.graph = graph
        self.c = check_restart_probability(c)
        if isinstance(reordering, ReorderingStrategy):
            self._strategy = reordering
        else:
            kwargs = {}
            if reordering in ("cluster", "hybrid", "random"):
                kwargs["seed"] = reordering_seed
            self._strategy = get_reordering(reordering, **kwargs)
        self.lu_backend = check_choice(lu_backend, ("auto", "scipy", "crout"), "lu_backend")
        self.inverse_backend = check_choice(
            inverse_backend, ("auto", "scipy", "reach"), "inverse_backend"
        )
        self._built = False
        self.build_report: Optional[BuildReport] = None

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    def build(self) -> "KDash":
        """Run the precomputation; returns ``self`` for chaining."""
        t_start = time.perf_counter()
        adjacency = column_normalized_adjacency(self.graph)

        t0 = time.perf_counter()
        self._perm = self._strategy.compute(self.graph)
        reorder_seconds = time.perf_counter() - t0

        permuted = self._perm.permute_matrix(adjacency)
        w = rwr_system_matrix(permuted, self.c)

        t0 = time.perf_counter()
        ell, u, backend_used = self._factorise(w)
        lu_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        self._l_inv, self._u_inv = triangular_inverses(
            ell, u, backend=self.inverse_backend
        )
        inverse_seconds = time.perf_counter() - t0

        # scipy CSR copy of U^-1 for vectorised full-vector products
        # (used by the prune=False ablation and proximity_column).
        self._u_inv_scipy = self._u_inv.to_scipy()

        # Adjacency structure in array form for the lazy BFS of the
        # query loop: successors(u) = _adj_indices[_adj_indptr[u]:...].
        adj = self.graph.adjacency_csc().to_scipy()
        self._adj_indptr = adj.indptr
        self._adj_indices = adj.indices
        # Plain-Python mirrors for the hot search loop: at the typical
        # out-degrees of real graphs (<~10), list iteration beats numpy
        # slicing by a wide margin, and the query loop is pure overhead
        # around one numpy dot per visited node.
        self._succ_lists = [
            adj.indices[adj.indptr[u] : adj.indptr[u + 1]].tolist()
            for u in range(self.graph.n_nodes)
        ]
        self._position_list = self._perm.position.tolist()

        # Exact per-query total proximity mass S(q) = c * 1^T W^-1 e_q,
        # indexed by permuted position.  Feeds the estimator's t3 term:
        # the paper assumes S(q) = 1, which only holds without dangling
        # nodes; using the exact value keeps the bound valid and tight
        # (see ProximityEstimator docs).  The 1e-12 cushion absorbs
        # floating-point underestimation; the clamp keeps it a probability.
        n = self.graph.n_nodes
        ones = np.ones(n, dtype=np.float64)
        # scipy CSC copy of L^-1 (kept: the dynamic-update wrapper and
        # personalised queries need full W^-1-vector products).
        self._l_inv_scipy = self._l_inv.to_scipy()
        column_sums = self._l_inv_scipy.T @ (self._u_inv_scipy.T @ ones)
        self._total_mass_perm = np.minimum(1.0, self.c * column_sums + 1e-12)

        # Estimator inputs live in *original* node order.
        adjacency_kernel = CSCMatrix.from_scipy(adjacency)
        self._amax_col = sparse_column_max(adjacency_kernel)
        self._amax = float(self._amax_col.max()) if self._amax_col.size else 0.0
        self._diag = adjacency.diagonal()

        self.build_report = BuildReport(
            reorder_seconds=reorder_seconds,
            lu_seconds=lu_seconds,
            inverse_seconds=inverse_seconds,
            total_seconds=time.perf_counter() - t_start,
            fill_in=fill_in_report(self.graph.n_edges, ell, u, self._l_inv, self._u_inv),
            lu_backend_used=backend_used,
        )
        self._built = True
        return self

    def _factorise(self, w: sp.csc_matrix):
        """Apply the configured LU backend, with auto-fallback."""
        if self.lu_backend == "crout":
            ell, u = crout_lu(w)
            return ell, u, "crout"
        if self.lu_backend == "scipy":
            ell, u = superlu_lu(w)
            return ell, u, "scipy"
        try:
            ell, u = superlu_lu(w)
            return ell, u, "scipy"
        except DecompositionError:
            ell, u = crout_lu(w)
            return ell, u, "crout"

    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError(
                "KDash index not built; call .build() before querying"
            )

    @property
    def index_nnz(self) -> int:
        """Stored nonzeros of ``L^-1`` + ``U^-1`` (the index footprint)."""
        self._require_built()
        return self._l_inv.nnz + self._u_inv.nnz

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------
    def _query_workspace(self, query: int) -> np.ndarray:
        """Dense scatter of column ``position[q]`` of ``L^-1``."""
        qpos = int(self._perm.position[query])
        rows, vals = self._l_inv.column(qpos)
        y = np.zeros(self.graph.n_nodes, dtype=np.float64)
        y[rows] = vals
        return y

    def proximity(self, query: int, node: int) -> float:
        """Exact proximity of a single ``(query, node)`` pair.

        Cost: one sparse column scatter plus one sparse row dot
        (Equation 3).  For many nodes against the same query, use
        :meth:`top_k` or :meth:`proximity_column` instead.
        """
        self._require_built()
        query = check_node_id(query, self.graph.n_nodes, "query")
        node = check_node_id(node, self.graph.n_nodes, "node")
        y = self._query_workspace(query)
        return self.c * self._u_inv.row_dot(int(self._perm.position[node]), y)

    def proximity_column(self, query: int) -> np.ndarray:
        """The full exact proximity vector for ``query``, original order.

        Vectorised through the scipy copy of ``U^-1``; used by tests and
        the no-pruning ablation.
        """
        self._require_built()
        query = check_node_id(query, self.graph.n_nodes, "query")
        y = self._query_workspace(query)
        permuted = self.c * (self._u_inv_scipy @ y)
        return self._perm.unpermute_vector(permuted)

    def top_k(
        self,
        query: int,
        k: int = 5,
        prune: bool = True,
        root: Optional[int] = None,
    ) -> TopKResult:
        """Find the ``k`` nodes with highest proximity w.r.t. ``query``.

        Parameters
        ----------
        query:
            The query node ``q``.
        k:
            Number of answers ``K``.
        prune:
            ``False`` disables the tree estimation entirely and computes
            every scheduled node — the "Without pruning" ablation of
            Figure 7.  The answer set is identical either way.
        root:
            Override for the BFS root (default: the query node).  Used by
            the Figure 9 ablation; any override schedules *all* nodes and
            keeps exactness by never terminating before the query node
            itself has been evaluated.

        Returns
        -------
        TopKResult
            Ranked answers plus search counters.
        """
        self._require_built()
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        k = check_k(k)
        if root is not None:
            root = check_node_id(root, n, "root")

        y = self._query_workspace(query)

        if not prune:
            tree = BFSTree(
                self.graph,
                query if root is None else root,
                include_unreached=root is not None,
            )
            return self._top_k_exhaustive(query, k, tree, y)
        if root is not None and root != query:
            return self._top_k_root_override(query, k, root, y)
        return self._top_k_pruned(query, k, y)

    def _top_k_pruned(self, query: int, k: int, y: np.ndarray) -> TopKResult:
        """Algorithm 4 with the BFS tree expanded lazily.

        The visit sequence is exactly the BFS discovery order a full tree
        would give, but nodes beyond the termination point are never even
        discovered — so a heavily pruned query costs time proportional to
        the visited neighbourhood, not to ``n + m`` (the practical
        behaviour behind the paper's Figure 2 gap).
        """
        n = self.graph.n_nodes
        position = self._position_list
        c = self.c
        succ_lists = self._succ_lists
        # Local views of U^-1 (CSR) for the inlined row dot products.
        uinv_indptr = self._u_inv.indptr.tolist()
        uinv_indices = self._u_inv.indices
        uinv_data = self._u_inv.data
        amax_col = self._amax_col.tolist()
        amax = self._amax

        # The Definition 2 state machine, inlined for the hot loop (the
        # class-based ProximityEstimator realises the same recurrences
        # and is what tests verify; see repro/core/estimator.py):
        #   t1 = sum of p_v*Amax(v) over selected nodes one layer up,
        #   t2 = same over selected nodes on the current layer,
        #   t3 = (1 - selected mass) * Amax.
        max_diag = float(self._diag.max()) if n else 0.0
        c_prime = (1.0 - c) / (1.0 - (1.0 - c) * max_diag)
        t1 = 0.0
        t2 = 0.0
        selected_mass = 0.0
        total_mass = float(self._total_mass_perm[position[query]])

        # Candidate heap primed with K dummies of proximity 0 (Algorithm 4
        # line 4); ties broken by visit sequence, which only affects which
        # equal-proximity node is evicted, never correctness.
        heap: List[Tuple[float, int, int]] = [(0.0, -j, -1) for j in range(k)]
        heapq.heapify(heap)
        heapreplace = heapq.heapreplace
        theta = 0.0
        n_visited = 0
        n_computed = 0
        terminated_early = False
        sequence = 0
        seen = bytearray(n)
        seen[query] = 1
        # Layer-by-layer frontier lists reproduce FIFO BFS discovery order.
        frontier: List[int] = [query]
        layer = 0
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                n_visited += 1
                bound = (
                    1.0
                    if node == query
                    else c_prime * (t1 + t2 + (total_mass - selected_mass) * amax)
                )
                if bound < theta:
                    # Lemma 2: every undiscovered node is bounded below
                    # theta as well -> stop outright.
                    terminated_early = True
                    frontier = next_frontier = []
                    break
                pos = position[node]
                lo, hi = uinv_indptr[pos], uinv_indptr[pos + 1]
                proximity = c * (uinv_data[lo:hi] @ y[uinv_indices[lo:hi]])
                n_computed += 1
                t2 += proximity * amax_col[node]
                selected_mass += proximity
                if proximity > theta:
                    sequence += 1
                    heapreplace(heap, (proximity, sequence, node))
                    theta = heap[0][0]
                for child in succ_lists[node]:
                    if not seen[child]:
                        seen[child] = True
                        next_frontier.append(child)
            frontier = next_frontier
            layer += 1
            # Layer advance: own-layer sum becomes the layer-above sum
            # (Definition 2's shift case).
            t1 = t2
            t2 = 0.0

        items = [(node, p) for p, _, node in heap if node >= 0]
        ranked = rank_items(items, k)
        ranked, padded = self._pad(ranked, k)
        return TopKResult(
            query=query,
            k=k,
            items=ranked,
            n_visited=n_visited,
            n_computed=n_computed,
            n_pruned=n - n_visited,
            terminated_early=terminated_early,
            padded=padded,
        )

    def _top_k_root_override(
        self, query: int, k: int, root: int, y: np.ndarray
    ) -> TopKResult:
        """The Figure 9 ablation: BFS tree rooted away from the query.

        All nodes are scheduled (tree layers first, non-tree nodes in a
        synthetic final layer).  Exactness needs one extra rule: the
        query node's bound is the constant 1, which breaks Lemma 2's
        monotone chain, so termination may only fire once the query has
        been evaluated; before that, bound violations merely *skip* the
        node (sound: theta is monotone and the node's own bound already
        rules it out).
        """
        tree = BFSTree(self.graph, root, include_unreached=True)
        position = self._perm.position
        u_inv = self._u_inv
        c = self.c
        estimator = ProximityEstimator(
            self._amax_col,
            self._amax,
            self._diag,
            c,
            query,
            total_mass=float(self._total_mass_perm[position[query]]),
        )
        heap: List[Tuple[float, int, int]] = [(0.0, -j, -1) for j in range(k)]
        heapq.heapify(heap)
        theta = 0.0
        n_visited = 0
        n_computed = 0
        n_pruned = 0
        terminated_early = False
        query_seen = False
        sequence = 0
        for node, layer in tree:
            n_visited += 1
            bound = estimator.step(node, layer)
            if bound < theta and node != query:
                if query_seen:
                    n_pruned += 1 + (tree.n_scheduled - n_visited)
                    terminated_early = True
                    break
                n_pruned += 1
                continue
            if node == query:
                query_seen = True
            proximity = c * u_inv.row_dot(int(position[node]), y)
            n_computed += 1
            estimator.record(node, proximity)
            if proximity > theta:
                sequence += 1
                heapq.heapreplace(heap, (proximity, sequence, node))
                theta = heap[0][0]

        items = [(node, p) for p, _, node in heap if node >= 0]
        ranked = rank_items(items, k)
        ranked, padded = self._pad(ranked, k)
        return TopKResult(
            query=query,
            k=k,
            items=ranked,
            n_visited=n_visited,
            n_computed=n_computed,
            n_pruned=n_pruned,
            terminated_early=terminated_early,
            padded=padded,
        )

    def above_threshold(self, query: int, threshold: float) -> TopKResult:
        """All nodes with proximity at least ``threshold``, exactly.

        The dual of :meth:`top_k`: instead of a count budget, a proximity
        floor.  The same Lemma 1/2 machinery applies with θ *fixed* at
        the threshold — the first visited node whose bound drops below it
        certifies that no unvisited node can reach it.  Useful when the
        application has a relevance cut-off rather than a list length
        (e.g. "every term with proximity ≥ 0.001").

        Returns
        -------
        TopKResult
            ``items`` holds **all** qualifying nodes (``k`` is set to the
            answer size); never padded.
        """
        from ..exceptions import InvalidParameterError

        self._require_built()
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        threshold = float(threshold)
        if not (threshold > 0.0) or not np.isfinite(threshold):
            raise InvalidParameterError(
                f"threshold must be a positive finite float, got {threshold!r}"
            )
        y = self._query_workspace(query)
        position = self._position_list
        uinv_indptr = self._u_inv.indptr.tolist()
        uinv_indices = self._u_inv.indices
        uinv_data = self._u_inv.data
        amax_col = self._amax_col.tolist()
        amax = self._amax
        c = self.c
        max_diag = float(self._diag.max()) if n else 0.0
        c_prime = (1.0 - c) / (1.0 - (1.0 - c) * max_diag)
        total_mass = float(self._total_mass_perm[position[query]])

        t1 = 0.0
        t2 = 0.0
        selected_mass = 0.0
        answers: List[Tuple[int, float]] = []
        n_visited = 0
        n_computed = 0
        terminated_early = False
        seen = bytearray(n)
        seen[query] = 1
        frontier: List[int] = [query]
        succ_lists = self._succ_lists
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                n_visited += 1
                bound = (
                    1.0
                    if node == query
                    else c_prime * (t1 + t2 + (total_mass - selected_mass) * amax)
                )
                if bound < threshold:
                    terminated_early = True
                    frontier = next_frontier = []
                    break
                pos = position[node]
                lo, hi = uinv_indptr[pos], uinv_indptr[pos + 1]
                proximity = c * (uinv_data[lo:hi] @ y[uinv_indices[lo:hi]])
                n_computed += 1
                t2 += proximity * amax_col[node]
                selected_mass += proximity
                if proximity >= threshold:
                    answers.append((node, proximity))
                for child in succ_lists[node]:
                    if not seen[child]:
                        seen[child] = 1
                        next_frontier.append(child)
            frontier = next_frontier
            t1 = t2
            t2 = 0.0

        ranked = rank_items(answers, len(answers)) if answers else ()
        return TopKResult(
            query=query,
            k=len(ranked),
            items=ranked,
            n_visited=n_visited,
            n_computed=n_computed,
            n_pruned=n - n_visited,
            terminated_early=terminated_early,
            padded=False,
        )

    def top_k_personalized(
        self,
        restart,
        k: int = 5,
    ) -> TopKResult:
        """Exact top-k for a *restart set* (Personalized PageRank).

        The paper's footnote 6: "In Personalized PageRank, a random
        particle returns to the start node set, not the start node."
        K-dash extends naturally: the restart vector becomes a convex
        combination of basis vectors, ``y`` a weighted sum of ``L^-1``
        columns, the BFS tree becomes multi-source (all seeds on layer
        0), and every bound argument goes through unchanged — seeds are
        bounded by the trivial 1, non-seeds by Definition 1 (whose
        derivation never used ``|restart| = 1``).

        Parameters
        ----------
        restart:
            Mapping ``{node: weight}`` with positive weights; weights are
            normalised to sum to 1.
        k:
            Number of answers.

        Returns
        -------
        TopKResult
            ``result.query`` holds the smallest seed id (the full seed
            set is not representable in the scalar field).
        """
        from ..exceptions import InvalidParameterError

        n = self.graph.n_nodes
        self._require_built()
        k = check_k(k)
        if not restart:
            raise InvalidParameterError("restart set must not be empty")
        seeds = {}
        for node, weight in dict(restart).items():
            node = check_node_id(node, n, "restart node")
            weight = float(weight)
            if not (weight > 0.0) or not np.isfinite(weight):
                raise InvalidParameterError(
                    f"restart weight for node {node} must be positive, got {weight!r}"
                )
            seeds[node] = weight
        total_weight = sum(seeds.values())

        # y = sum_i w_i * L^-1[:, pos_i]  (the multi-column scatter).
        y = np.zeros(n, dtype=np.float64)
        total_mass = 0.0
        for node, weight in seeds.items():
            share = weight / total_weight
            pos = int(self._perm.position[node])
            rows, vals = self._l_inv.column(pos)
            y[rows] += share * vals
            total_mass += share * float(self._total_mass_perm[pos])
        total_mass = min(1.0, total_mass + 1e-12)

        position = self._position_list
        uinv_indptr = self._u_inv.indptr.tolist()
        uinv_indices = self._u_inv.indices
        uinv_data = self._u_inv.data
        amax_col = self._amax_col.tolist()
        amax = self._amax
        c = self.c
        max_diag = float(self._diag.max()) if n else 0.0
        c_prime = (1.0 - c) / (1.0 - (1.0 - c) * max_diag)
        seed_set = set(seeds)

        t1 = 0.0
        t2 = 0.0
        selected_mass = 0.0
        heap: List[Tuple[float, int, int]] = [(0.0, -j, -1) for j in range(k)]
        heapq.heapify(heap)
        heapreplace = heapq.heapreplace
        theta = 0.0
        n_visited = 0
        n_computed = 0
        terminated_early = False
        sequence = 0
        seen = bytearray(n)
        frontier: List[int] = sorted(seed_set)
        for s in frontier:
            seen[s] = 1
        succ_lists = self._succ_lists
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                n_visited += 1
                bound = (
                    1.0
                    if node in seed_set
                    else c_prime * (t1 + t2 + (total_mass - selected_mass) * amax)
                )
                if bound < theta:
                    terminated_early = True
                    frontier = next_frontier = []
                    break
                pos = position[node]
                lo, hi = uinv_indptr[pos], uinv_indptr[pos + 1]
                proximity = c * (uinv_data[lo:hi] @ y[uinv_indices[lo:hi]])
                n_computed += 1
                t2 += proximity * amax_col[node]
                selected_mass += proximity
                if proximity > theta:
                    sequence += 1
                    heapreplace(heap, (proximity, sequence, node))
                    theta = heap[0][0]
                for child in succ_lists[node]:
                    if not seen[child]:
                        seen[child] = 1
                        next_frontier.append(child)
            frontier = next_frontier
            t1 = t2
            t2 = 0.0

        items = [(node, p) for p, _, node in heap if node >= 0]
        ranked = rank_items(items, k)
        ranked, padded = self._pad(ranked, k)
        return TopKResult(
            query=min(seed_set),
            k=k,
            items=ranked,
            n_visited=n_visited,
            n_computed=n_computed,
            n_pruned=n - n_visited,
            terminated_early=terminated_early,
            padded=padded,
        )

    def top_k_batch(
        self,
        queries,
        k: int = 5,
        prune: bool = True,
    ) -> List[TopKResult]:
        """Run :meth:`top_k` for a sequence of queries.

        Convenience for recommendation-style workloads that rank against
        many seeds; results are returned in input order.  The index is
        shared, so this is simply the per-query cost times
        ``len(queries)`` — there is no cross-query state.
        """
        return [self.top_k(int(q), k, prune=prune) for q in queries]

    def _top_k_exhaustive(
        self, query: int, k: int, tree: BFSTree, y: np.ndarray
    ) -> TopKResult:
        """The prune=False ablation: evaluate every scheduled node."""
        permuted = self.c * (self._u_inv_scipy @ y)
        full = self._perm.unpermute_vector(permuted)
        pairs = [(int(u), float(full[u])) for u in tree.order]
        ranked = rank_items(pairs, k)
        ranked, padded = self._pad(ranked, k)
        return TopKResult(
            query=query,
            k=k,
            items=ranked,
            n_visited=tree.n_scheduled,
            n_computed=tree.n_scheduled,
            n_pruned=0,
            terminated_early=False,
            padded=padded,
        )

    def _pad(
        self, ranked: Tuple[Tuple[int, float], ...], k: int
    ) -> Tuple[Tuple[Tuple[int, float], ...], bool]:
        """Fill up to ``k`` items with zero-proximity nodes (ascending id).

        Matches the brute-force canonical ordering: nodes unreachable
        from the query have proximity exactly 0 and rank after every
        reachable node, tie-broken by id.
        """
        n = self.graph.n_nodes
        want = min(k, n)
        if len(ranked) >= want:
            return ranked[:want], False
        present = {node for node, _ in ranked}
        extra = []
        for node in range(n):
            if node not in present:
                extra.append((node, 0.0))
                if len(ranked) + len(extra) == want:
                    break
        return tuple(ranked) + tuple(extra), True
