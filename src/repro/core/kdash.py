"""K-dash: the exact top-k RWR search index (Sections 4.2–4.4).

Build phase (:meth:`KDash.build`):

1. reorder the nodes with one of the Section 4.2.2 heuristics;
2. form ``W = I - (1-c) A'`` over the reordered transition matrix;
3. LU-factorise ``W`` without pivoting (Equations 6–7);
4. invert the triangular factors sparsely (Equations 4–5), storing
   ``L^-1`` column-wise and ``U^-1`` row-wise;
5. precompute the estimator inputs ``Amax``, ``Amax(v)`` and ``A_vv``.

Query phase (:meth:`KDash.top_k`, Algorithm 4): scatter column ``q`` of
``L^-1`` into a dense workspace, walk the BFS tree of the query in
ascending layer order, maintain the Definition 2 upper bound in O(1) per
node, and evaluate ``p_u = c · U^-1[u,:] · y`` only while the bound stays
at or above the running K-th best proximity θ.  Lemmas 1–2 make the first
bound violation a certificate that *every* remaining node is out, so the
search stops — exactness without exhaustive computation (Theorem 2).

All query modes (top-k, root-override ablation, threshold, personalized
restart sets) are thin adapters over the single
:func:`~repro.query.kernel.pruned_scan` kernel, fed by the
:class:`~repro.query.prepared.PreparedIndex` cached at build time; for
serving-oriented batched execution see
:class:`~repro.query.engine.QueryEngine`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import DecompositionError, IndexNotBuiltError
from ..graph.digraph import DiGraph
from ..graph.matrices import column_normalized_adjacency, rwr_system_matrix
from ..lu.crout import crout_lu
from ..lu.fillin import FillInReport, fill_in_report
from ..lu.inverse import triangular_inverses
from ..lu.scipy_backend import superlu_lu
from ..ordering import ReorderingStrategy, get_reordering
from ..query.kernel import pruned_scan, scan_to_topk
from ..query.prepared import PreparedIndex
from ..sparse import sparse_column_max
from ..sparse.csc import CSCMatrix
from ..validation import (
    check_choice,
    check_k,
    check_node_id,
    check_restart_probability,
    check_restart_set,
    check_threshold,
)
from .bfs_tree import BFSTree
from .topk import TopKResult, pad_items, rank_items


@dataclass(frozen=True)
class BuildReport:
    """Timings and sizes recorded during :meth:`KDash.build`.

    ``reorder_seconds`` / ``lu_seconds`` / ``inverse_seconds`` decompose
    the precomputation cost (Figure 6); ``fill_in`` carries the nonzero
    accounting of Figure 5.
    """

    reorder_seconds: float
    lu_seconds: float
    inverse_seconds: float
    total_seconds: float
    fill_in: FillInReport
    lu_backend_used: str


class KDash:
    """Exact top-k random-walk-with-restart search.

    Parameters
    ----------
    graph:
        The weighted directed graph.
    c:
        Restart probability in ``(0, 1)``; the paper uses 0.95.
    reordering:
        ``"hybrid"`` (paper default), ``"degree"``, ``"cluster"``,
        ``"random"``, ``"identity"``, or a
        :class:`~repro.ordering.base.ReorderingStrategy` instance.
    lu_backend:
        ``"auto"`` (SuperLU with pure-Python fallback), ``"scipy"``, or
        ``"crout"`` (the from-scratch Equations 6–7 kernel).
    inverse_backend:
        Forwarded to :func:`repro.lu.inverse.triangular_inverses`.
    reordering_seed:
        Seed for the stochastic reorderings (Louvain sweeps / random).
    kernel_backend:
        Kernel backend for the pruned scan — ``"python"``, ``"numpy"``,
        ``"numba"``, or ``None`` for the ``REPRO_KERNEL_BACKEND``
        environment default.  Every backend is bit-identical; see
        :mod:`repro.query.backends`.

    Examples
    --------
    >>> from repro.graph import star_graph
    >>> index = KDash(star_graph(4), c=0.9).build()
    >>> result = index.top_k(query=0, k=2)
    >>> result.nodes[0]
    0
    """

    def __init__(
        self,
        graph: DiGraph,
        c: float = 0.95,
        reordering="hybrid",
        lu_backend: str = "auto",
        inverse_backend: str = "auto",
        reordering_seed: int = 0,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.c = check_restart_probability(c)
        if kernel_backend is not None:
            # Fail fast on unknown names; None stays None so the
            # environment is consulted at build time.
            from ..query.backends import resolve_backend_name

            kernel_backend = resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        if isinstance(reordering, ReorderingStrategy):
            self._strategy = reordering
        else:
            kwargs = {}
            if reordering in ("cluster", "hybrid", "random"):
                kwargs["seed"] = reordering_seed
            self._strategy = get_reordering(reordering, **kwargs)
        self.lu_backend = check_choice(lu_backend, ("auto", "scipy", "crout"), "lu_backend")
        self.inverse_backend = check_choice(
            inverse_backend, ("auto", "scipy", "reach"), "inverse_backend"
        )
        self._built = False
        self.build_report: Optional[BuildReport] = None

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    def build(self) -> "KDash":
        """Run the precomputation; returns ``self`` for chaining."""
        t_start = time.perf_counter()
        adjacency = column_normalized_adjacency(self.graph)

        t0 = time.perf_counter()
        self._perm = self._strategy.compute(self.graph)
        reorder_seconds = time.perf_counter() - t0

        permuted = self._perm.permute_matrix(adjacency)
        w = rwr_system_matrix(permuted, self.c)

        t0 = time.perf_counter()
        ell, u, backend_used = self._factorise(w)
        lu_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        self._l_inv, self._u_inv = triangular_inverses(
            ell, u, backend=self.inverse_backend
        )
        inverse_seconds = time.perf_counter() - t0

        # Estimator inputs live in *original* node order.
        adjacency_kernel = CSCMatrix.from_scipy(adjacency)
        self._amax_col = sparse_column_max(adjacency_kernel)
        self._amax = float(self._amax_col.max()) if self._amax_col.size else 0.0
        self._diag = adjacency.diagonal()

        self._finalise_query_path()

        self.build_report = BuildReport(
            reorder_seconds=reorder_seconds,
            lu_seconds=lu_seconds,
            inverse_seconds=inverse_seconds,
            total_seconds=time.perf_counter() - t_start,
            fill_in=fill_in_report(self.graph.n_edges, ell, u, self._l_inv, self._u_inv),
            lu_backend_used=backend_used,
        )
        return self

    def _finalise_query_path(
        self,
        succ_lists: Optional[List[List[int]]] = None,
        total_mass_perm: Optional[np.ndarray] = None,
    ) -> None:
        """Derive every query-invariant structure from the factor state.

        Called at the end of :meth:`build` and by
        :func:`repro.core.index_io.load_index`.  Requires ``_perm``,
        ``_l_inv``, ``_u_inv``, ``_amax_col``, ``_amax`` and ``_diag``;
        produces the scipy copies, the exact per-query proximity mass,
        and the :class:`~repro.query.prepared.PreparedIndex` that makes
        per-query setup O(1) — all ``tolist()`` conversions and the
        ``c'`` computation happen exactly once, here.

        ``succ_lists`` / ``total_mass_perm`` let a version-2 snapshot
        load (:func:`repro.core.index_io.load_index`) hand the persisted
        caches straight in, skipping the adjacency conversion and the
        two triangular products they would otherwise cost.
        """
        n = self.graph.n_nodes
        # scipy copies for vectorised full-vector products: U^-1 (CSR)
        # feeds the prune=False ablation and proximity_column; L^-1
        # (CSC) feeds the dynamic-update wrapper.
        self._u_inv_scipy = self._u_inv.to_scipy()
        self._l_inv_scipy = self._l_inv.to_scipy()

        # Successor lists for the lazy BFS of the query loop, as
        # plain-Python mirrors: at the typical out-degrees of real
        # graphs (<~10), list iteration beats numpy slicing by a wide
        # margin, and the query loop is pure overhead around one numpy
        # dot per visited node.
        if succ_lists is None:
            adj = self.graph.adjacency_csc().to_scipy()
            succ_lists = [
                adj.indices[adj.indptr[u] : adj.indptr[u + 1]].tolist()
                for u in range(n)
            ]
        self._succ_lists = succ_lists

        # Exact per-query total proximity mass S(q) = c * 1^T W^-1 e_q,
        # indexed by permuted position.  Feeds the estimator's t3 term:
        # the paper assumes S(q) = 1, which only holds without dangling
        # nodes; using the exact value keeps the bound valid and tight
        # (see ProximityEstimator docs).  The 1e-12 cushion absorbs
        # floating-point underestimation; the clamp keeps it a probability.
        if total_mass_perm is None:
            ones = np.ones(n, dtype=np.float64)
            column_sums = self._l_inv_scipy.T @ (self._u_inv_scipy.T @ ones)
            total_mass_perm = np.minimum(1.0, self.c * column_sums + 1e-12)
        self._total_mass_perm = np.asarray(total_mass_perm, dtype=np.float64)

        self._prepared = PreparedIndex(
            n=n,
            c=self.c,
            max_diag=float(self._diag.max()) if n else 0.0,
            amax=self._amax,
            amax_col=self._amax_col,
            position=self._perm.position,
            succ_lists=self._succ_lists,
            u_inv=self._u_inv,
            l_inv=self._l_inv,
            total_mass_perm=self._total_mass_perm,
            backend=self.kernel_backend,
        )
        self._built = True

    @property
    def prepared(self) -> PreparedIndex:
        """The query-invariant state shared with the pruned-scan kernel."""
        self._require_built()
        return self._prepared

    def _factorise(self, w: sp.csc_matrix):
        """Apply the configured LU backend, with auto-fallback."""
        if self.lu_backend == "crout":
            ell, u = crout_lu(w)
            return ell, u, "crout"
        if self.lu_backend == "scipy":
            ell, u = superlu_lu(w)
            return ell, u, "scipy"
        try:
            ell, u = superlu_lu(w)
            return ell, u, "scipy"
        except DecompositionError:
            ell, u = crout_lu(w)
            return ell, u, "crout"

    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError(
                "KDash index not built; call .build() before querying"
            )

    @property
    def index_nnz(self) -> int:
        """Stored nonzeros of ``L^-1`` + ``U^-1`` (the index footprint)."""
        self._require_built()
        return self._l_inv.nnz + self._u_inv.nnz

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------
    def _query_workspace(self, query: int) -> np.ndarray:
        """Dense scatter of column ``position[q]`` of ``L^-1``."""
        y = self._prepared.workspace()
        self._prepared.scatter_column(y, query)
        return y

    def proximity(self, query: int, node: int) -> float:
        """Exact proximity of a single ``(query, node)`` pair.

        Cost: one sparse column scatter plus one sparse row dot
        (Equation 3).  For many nodes against the same query, use
        :meth:`top_k` or :meth:`proximity_column` instead.
        """
        self._require_built()
        query = check_node_id(query, self.graph.n_nodes, "query")
        node = check_node_id(node, self.graph.n_nodes, "node")
        y = self._query_workspace(query)
        return self.c * self._u_inv.row_dot(int(self._perm.position[node]), y)

    def proximity_column(self, query: int) -> np.ndarray:
        """The full exact proximity vector for ``query``, original order.

        Vectorised through the scipy copy of ``U^-1``; used by tests and
        the no-pruning ablation.
        """
        self._require_built()
        query = check_node_id(query, self.graph.n_nodes, "query")
        y = self._query_workspace(query)
        permuted = self.c * (self._u_inv_scipy @ y)
        return self._perm.unpermute_vector(permuted)

    def top_k(
        self,
        query: int,
        k: int = 5,
        prune: bool = True,
        root: Optional[int] = None,
    ) -> TopKResult:
        """Find the ``k`` nodes with highest proximity w.r.t. ``query``.

        Parameters
        ----------
        query:
            The query node ``q``.
        k:
            Number of answers ``K``.
        prune:
            ``False`` disables the tree estimation entirely and computes
            every scheduled node — the "Without pruning" ablation of
            Figure 7.  The answer set is identical either way.
        root:
            Override for the BFS root (default: the query node).  Used by
            the Figure 9 ablation; any override schedules *all* nodes and
            keeps exactness by never terminating before the query node
            itself has been evaluated.

        Returns
        -------
        TopKResult
            Ranked answers plus search counters.
        """
        self._require_built()
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        k = check_k(k)
        if root is not None:
            root = check_node_id(root, n, "root")

        y = self._query_workspace(query)

        if not prune:
            tree = BFSTree(
                self.graph,
                query if root is None else root,
                include_unreached=root is not None,
            )
            return self._top_k_exhaustive(query, k, tree, y)

        # The Figure 9 ablation replaces the lazy frontier with a fixed
        # BFSTree schedule rooted away from the query; the kernel then
        # defers termination until the query node has been evaluated
        # (its constant-1 bound breaks Lemma 2's monotone chain).
        schedule = None
        if root is not None and root != query:
            schedule = BFSTree(self.graph, root, include_unreached=True)
        scan = pruned_scan(
            self._prepared,
            y,
            (query,),
            k=k,
            total_mass=self._prepared.total_mass_of(query),
            schedule=schedule,
        )
        return scan_to_topk(query, k, n, scan)

    def above_threshold(self, query: int, threshold: float) -> TopKResult:
        """All nodes with proximity at least ``threshold``, exactly.

        The dual of :meth:`top_k`: instead of a count budget, a proximity
        floor.  The same Lemma 1/2 machinery applies with θ *fixed* at
        the threshold — the first visited node whose bound drops below it
        certifies that no unvisited node can reach it.  Useful when the
        application has a relevance cut-off rather than a list length
        (e.g. "every term with proximity ≥ 0.001").

        Returns
        -------
        TopKResult
            ``items`` holds **all** qualifying nodes (``k`` is set to the
            answer size); never padded.
        """
        self._require_built()
        n = self.graph.n_nodes
        query = check_node_id(query, n, "query")
        threshold = check_threshold(threshold)
        y = self._query_workspace(query)
        scan = pruned_scan(
            self._prepared,
            y,
            (query,),
            threshold=threshold,
            total_mass=self._prepared.total_mass_of(query),
        )
        ranked = rank_items(scan.items, len(scan.items)) if scan.items else ()
        return TopKResult(
            query=query,
            k=len(ranked),
            items=ranked,
            n_visited=scan.n_visited,
            n_computed=scan.n_computed,
            n_pruned=scan.n_pruned,
            terminated_early=scan.terminated_early,
            padded=False,
        )

    def top_k_personalized(
        self,
        restart,
        k: int = 5,
    ) -> TopKResult:
        """Exact top-k for a *restart set* (Personalized PageRank).

        The paper's footnote 6: "In Personalized PageRank, a random
        particle returns to the start node set, not the start node."
        K-dash extends naturally: the restart vector becomes a convex
        combination of basis vectors, ``y`` a weighted sum of ``L^-1``
        columns, the BFS tree becomes multi-source (all seeds on layer
        0), and every bound argument goes through unchanged — seeds are
        bounded by the trivial 1, non-seeds by Definition 1 (whose
        derivation never used ``|restart| = 1``).

        Parameters
        ----------
        restart:
            Mapping ``{node: weight}`` with positive weights; weights are
            normalised to sum to 1.
        k:
            Number of answers.

        Returns
        -------
        TopKResult
            ``result.query`` holds the smallest seed id (the full seed
            set is not representable in the scalar field).
        """
        n = self.graph.n_nodes
        self._require_built()
        k = check_k(k)
        shares = check_restart_set(restart, n)

        # y = sum_i w_i * L^-1[:, pos_i]  (the multi-column scatter);
        # every seed gets the trivial bound 1 and all seeds form layer 0
        # of the lazy multi-source BFS.
        y, total_mass = self._prepared.seed_workspace(shares)
        scan = pruned_scan(
            self._prepared,
            y,
            shares,
            k=k,
            total_mass=total_mass,
        )
        result = scan_to_topk(min(shares), k, n, scan)
        return result

    def top_k_batch(
        self,
        queries,
        k: int = 5,
        prune: bool = True,
    ) -> List[TopKResult]:
        """Run :meth:`top_k` for a sequence of queries, naively.

        Results are returned in input order; the cost is simply the
        per-query cost times ``len(queries)`` — no cross-query state, no
        workspace reuse, no deduplication.  Kept as the unbatched
        baseline; serving workloads should prefer
        :meth:`repro.query.engine.QueryEngine.top_k_many`, which shares
        one workspace across the batch, dedupes repeated queries and can
        cache results across calls.
        """
        return [self.top_k(int(q), k, prune=prune) for q in queries]

    def _top_k_exhaustive(
        self, query: int, k: int, tree: BFSTree, y: np.ndarray
    ) -> TopKResult:
        """The prune=False ablation: evaluate every scheduled node."""
        permuted = self.c * (self._u_inv_scipy @ y)
        full = self._perm.unpermute_vector(permuted)
        pairs = [(int(u), float(full[u])) for u in tree.order]
        ranked = rank_items(pairs, k)
        ranked, padded = pad_items(ranked, k, self.graph.n_nodes)
        return TopKResult(
            query=query,
            k=k,
            items=ranked,
            n_visited=tree.n_scheduled,
            n_computed=tree.n_scheduled,
            n_pruned=0,
            terminated_early=False,
            padded=padded,
        )
