"""The paper's primary contribution: the K-dash top-k RWR index.

- :class:`~repro.core.kdash.KDash` — build-once / query-many index
  combining the sparse triangular inverses (Section 4.2) with the
  BFS-tree upper-bound pruning (Section 4.3, Algorithm 4);
- :class:`~repro.core.estimator.ProximityEstimator` — Definitions 1–2,
  the O(1) incremental upper bound;
- :class:`~repro.core.bfs_tree.BFSTree` — layered visit order;
- :class:`~repro.core.topk.TopKResult` — query result with search
  statistics (visited / computed / pruned counts for Figures 7 and 9);
- :class:`~repro.core.sharded.ShardedIndex` — the index split into
  bound-prunable shards (Louvain or range partitions) for the
  scatter-gather tier;
- :mod:`repro.core.index_io` — index persistence (v1/v2 single-index
  archives, v3 sharded manifests).

All query modes execute on the single
:func:`~repro.query.kernel.pruned_scan` kernel in :mod:`repro.query`,
which also provides the batched serving layer
(:class:`~repro.query.engine.QueryEngine`).
"""

from .bfs_tree import BFSTree
from .dynamic import DynamicKDash, UpdateReport
from .estimator import ProximityEstimator
from .index_io import (
    load_index,
    load_sharded_index,
    read_format_version,
    save_index,
    save_sharded_index,
)
from .kdash import KDash
from .sharded import (
    SHARD_PARTITIONERS,
    ShardIndex,
    ShardSummary,
    ShardedIndex,
    shard_assignment,
)
from .topk import TopKResult

__all__ = [
    "KDash",
    "DynamicKDash",
    "UpdateReport",
    "ProximityEstimator",
    "BFSTree",
    "TopKResult",
    "ShardedIndex",
    "ShardIndex",
    "ShardSummary",
    "shard_assignment",
    "SHARD_PARTITIONERS",
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_sharded_index",
    "read_format_version",
]
