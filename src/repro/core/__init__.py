"""The paper's primary contribution: the K-dash top-k RWR index.

- :class:`~repro.core.kdash.KDash` — build-once / query-many index
  combining the sparse triangular inverses (Section 4.2) with the
  BFS-tree upper-bound pruning (Section 4.3, Algorithm 4);
- :class:`~repro.core.estimator.ProximityEstimator` — Definitions 1–2,
  the O(1) incremental upper bound;
- :class:`~repro.core.bfs_tree.BFSTree` — layered visit order;
- :class:`~repro.core.topk.TopKResult` — query result with search
  statistics (visited / computed / pruned counts for Figures 7 and 9);
- :mod:`repro.core.index_io` — index persistence.

All query modes execute on the single
:func:`~repro.query.kernel.pruned_scan` kernel in :mod:`repro.query`,
which also provides the batched serving layer
(:class:`~repro.query.engine.QueryEngine`).
"""

from .bfs_tree import BFSTree
from .dynamic import DynamicKDash, UpdateReport
from .estimator import ProximityEstimator
from .index_io import load_index, save_index
from .kdash import KDash
from .topk import TopKResult

__all__ = [
    "KDash",
    "DynamicKDash",
    "UpdateReport",
    "ProximityEstimator",
    "BFSTree",
    "TopKResult",
    "save_index",
    "load_index",
]
