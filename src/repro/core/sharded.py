"""Partition-sharded K-dash: the index split into prunable shards.

The paper's tree-estimation bounds (Section 4.3, Lemmas 1–2) certify
that *unvisited nodes* cannot beat the running K-th proximity; the same
certify-then-skip idea lifts from nodes to whole **shards**.  A
:class:`ShardedIndex` partitions the node set (Louvain communities or
contiguous ranges), gives each shard the ``U^-1`` rows of its members,
and precomputes a compact :class:`ShardSummary` per shard whose
query-time upper bound dominates every member's proximity:

.. math::

    p_u \\;=\\; c \\cdot U^{-1}[u,:] \\cdot y
        \\;\\le\\; c \\sum_j \\max_{v \\in s} U^{-1}[v, j] \\; y_j

(both factors are non-negative — ``W^{-1} = \\sum_i (1-c)^i A'^i`` makes
the triangular inverses entrywise non-negative).  A scatter-gather plan
(:class:`~repro.query.planner.ScatterGatherPlanner`) scans the query's
home shard first, then visits remaining shards in descending bound
order and **skips every shard whose bound falls below the running
global K-th proximity** — the shard-level analogue of the Lemma 2
cut-off, and like it a pure pruning rule: answers stay bit-identical to
the single-index engine.

Within a shard, members are scanned in descending order of their
``U^-1`` row 1-norm; the per-node Hölder bound
``p_u <= c · ||U^-1[u,:]||_1 · max(y)`` allows an early break once the
sorted norms drop below the cut-off.  Exact proximities are computed as
the *same* sparse-row dot over the *same* arrays as the unified kernel
(:func:`~repro.query.kernel.pruned_scan`), so every reported float is
bitwise equal to the single-index answer; the canonical ``(proximity,
-node)`` heap discipline shared with the kernel makes tie resolution
order-independent, which is what lets per-shard candidates merge into
the exact same top-k set.

The shard payloads are what the serving tier distributes: format-v3
archives (:mod:`repro.core.index_io`) persist one manifest (shared
state + summaries) plus one file per shard, and each
:class:`~repro.serving.sharded.ShardPool` worker loads the manifest and
only its own shard.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..community import louvain_communities
from ..exceptions import InvalidParameterError
from ..validation import check_choice, check_positive_int

#: Partitioner names accepted by :func:`shard_assignment` (and the CLI).
SHARD_PARTITIONERS = ("louvain", "range")

#: Relative slack applied to every shard/node upper bound before it is
#: compared against θ.  The bounds are mathematically ≥ the exact
#: proximity, but both sides are float64 reductions; the slack absorbs
#: the accumulated rounding (≲ n·ε relative) so a bound can never be
#: rounded *below* a proximity it must dominate.
BOUND_SLACK = 1.0 + 1e-9


def shard_assignment(
    graph, n_shards: int, partitioner: str = "louvain", seed: int = 0
) -> np.ndarray:
    """Assign every node to a shard in ``0..n_shards-1``.

    ``louvain`` runs the Louvain method and folds its communities into
    ``n_shards`` groups greedily (largest community first onto the
    currently lightest shard) — communities stay whole, so the
    cross-shard edge mass Louvain minimised stays minimised.  ``range``
    cuts ``0..n-1`` into near-equal contiguous ranges — the degenerate
    partitioner that needs no graph structure at all (and the natural
    one after a cluster reordering, whose permuted ids are already
    community-contiguous).  Shards may come out empty when the graph is
    smaller than the shard count; every consumer handles that.

    Examples
    --------
    >>> from repro.graph import star_graph
    >>> shard_assignment(star_graph(3), 2, partitioner="range").tolist()
    [0, 0, 1, 1]
    """
    n_shards = check_positive_int(n_shards, "n_shards")
    partitioner = check_choice(partitioner, SHARD_PARTITIONERS, "partitioner")
    n = graph.n_nodes
    if partitioner == "range":
        return (np.arange(n, dtype=np.int64) * n_shards) // max(n, 1)
    partition = louvain_communities(graph, seed=seed)
    sizes = partition.sizes()
    shard_of_community = np.zeros(partition.n_communities, dtype=np.int64)
    load = [0] * n_shards
    # Stable largest-first onto the lightest shard: deterministic for a
    # given partition, balanced to within one community size.
    for community in np.argsort(-sizes, kind="stable"):
        target = min(range(n_shards), key=lambda s: (load[s], s))
        shard_of_community[community] = target
        load[target] += int(sizes[community])
    return shard_of_community[partition.assignment]


@dataclass(frozen=True)
class ShardSummary:
    """Compact per-shard state the gather side prunes with.

    Attributes
    ----------
    shard_id:
        The shard this summarises.
    n_members:
        Member count (0 for an empty shard).
    rownorm_max:
        ``max_u ||U^-1[u,:]||_1`` over members — the scalar summary used
        for reporting and as a last-resort bound.
    boundary_frac:
        Fraction of the members' out-edge weight that leaves the shard —
        the partition-quality signal (Louvain drives it down; ``range``
        on an unclustered graph does not).
    colmax:
        Length-``n`` columnwise maximum of the members' ``U^-1`` rows in
        permuted coordinates; :meth:`bound` contracts it against the
        query's scattered seed column.
    """

    shard_id: int
    n_members: int
    rownorm_max: float
    boundary_frac: float
    colmax: np.ndarray

    def bound(self, c: float, rows: np.ndarray, vals: np.ndarray) -> float:
        """Upper bound on any member's proximity for seed column ``vals``.

        ``rows``/``vals`` are the support of the dense workspace ``y``
        (the scatter of ``L^-1[:, position[q]]``), so the contraction
        costs O(nnz of the column), independent of shard size.
        """
        if not self.n_members or not rows.size:
            return 0.0
        return c * float(self.colmax[rows] @ vals) * BOUND_SLACK


class ShardIndex:
    """One shard's scan payload: its members' ``U^-1`` rows, pre-ordered.

    ``scan_nodes`` holds the member node ids sorted by descending
    ``U^-1`` row 1-norm (ties by ascending id), ``row_indptr`` /
    ``row_indices`` / ``row_data`` the members' rows concatenated in
    that order — each row slice copied *verbatim* from the global
    ``U^-1`` CSR so the per-node dot product reproduces the unified
    kernel's float result bit-for-bit.
    """

    __slots__ = (
        "shard_id",
        "members",
        "scan_nodes",
        "scan_norms",
        "row_indptr",
        "row_indices",
        "row_data",
        "_backend_cache",
    )

    def __init__(
        self,
        shard_id: int,
        members: np.ndarray,
        scan_nodes: Sequence[int],
        scan_norms: Sequence[float],
        row_indptr: np.ndarray,
        row_indices: np.ndarray,
        row_data: np.ndarray,
    ) -> None:
        self.shard_id = int(shard_id)
        self.members = np.asarray(members, dtype=np.int64)
        # Plain-Python mirrors for the scan loop, mirroring PreparedIndex.
        self.scan_nodes = [int(u) for u in scan_nodes]
        self.scan_norms = [float(b) for b in scan_norms]
        self.row_indptr = np.asarray(row_indptr, dtype=np.int64).tolist()
        self.row_indices = np.asarray(row_indices, dtype=np.int64)
        self.row_data = np.asarray(row_data, dtype=np.float64)
        # Per-backend derived state (numpy mirrors, scratch buffers),
        # keyed by kernel-backend name; see repro.query.backends.base.
        self._backend_cache: dict = {}

    @property
    def n_members(self) -> int:
        return len(self.scan_nodes)


def canonical_heap(n: int, k: int) -> List[Tuple[float, int, int]]:
    """A K-slot candidate heap primed with dummies, kernel-compatible.

    Entries are ``(proximity, -node, node)`` exactly as in
    :func:`~repro.query.kernel.pruned_scan`, so the heap minimum is the
    canonically worst retained answer and merging candidates from any
    number of shard scans resolves ties identically to one global scan.
    """
    heap = [(0.0, -(n + j), -1) for j in range(k)]
    heapq.heapify(heap)
    return heap


def heap_admit(
    heap: List[Tuple[float, int, int]], node: int, proximity: float
) -> None:
    """Admit one candidate under the canonical ordering, in place.

    This is THE tie-break contract: higher proximity wins, equal
    proximity falls to the smaller node id.  The pruned-scan kernel
    keeps a hand-inlined copy of the same two-clause test in its hot
    loop (see :func:`repro.query.kernel.pruned_scan`); any drift
    between the two breaks the sharded tier's bit-identical guarantee
    and is caught immediately by the golden fixtures
    (``tests/unit/test_golden.py``, which replays tie-heavy grids
    through both paths) and ``tests/property/test_prop_sharded.py``.
    """
    worst = heap[0]
    if proximity > worst[0] or (proximity == worst[0] and -node > worst[1]):
        heapq.heapreplace(heap, (proximity, -node, node))


def merge_candidates(
    heap: List[Tuple[float, int, int]], items: Sequence[Tuple[int, float]]
) -> float:
    """Fold ``(node, proximity)`` candidates into the canonical heap.

    Returns the new θ (the heap minimum's proximity).  Used by the
    gather side of the distributed plan to absorb one shard's reply.
    """
    for node, proximity in items:
        heap_admit(heap, node, proximity)
    return heap[0][0]


def heap_items(heap: List[Tuple[float, int, int]]) -> Tuple[Tuple[int, float], ...]:
    """The real ``(node, proximity)`` entries of a canonical heap."""
    return tuple((node, p) for p, _, node in heap if node >= 0)


def scan_shard_reference(
    shard: ShardIndex,
    c: float,
    y: np.ndarray,
    ymax: float,
    heap: List[Tuple[float, int, int]],
    floor: float = 0.0,
) -> Tuple[int, int]:
    """The scalar reference shard scan — the exactness oracle.

    This is the loop every registered kernel backend's ``scan_shard``
    must reproduce bit-for-bit (heap state, θ evolution, counters); the
    ``python`` backend calls it directly.  The proximity reduction is
    the canonical sequential sum in storage order (see
    :mod:`repro.query.backends.base`), with the trailing ``+ 0.0``
    pinning the accumulator-starts-at-+0.0 signed-zero convention.
    """
    nodes = shard.scan_nodes
    norms = shard.scan_norms
    indptr = shard.row_indptr
    indices = shard.row_indices
    data = shard.row_data
    admit = heap_admit
    cmax = c * ymax * BOUND_SLACK
    checked = 0
    computed = 0
    for i, node in enumerate(nodes):
        theta = heap[0][0]
        if floor > theta:
            theta = floor
        checked += 1
        if cmax * norms[i] < theta:
            break
        lo, hi = indptr[i], indptr[i + 1]
        proximity = c * float(
            (data[lo:hi] * y[indices[lo:hi]]).cumsum()[-1] + 0.0
        ) if hi > lo else 0.0
        computed += 1
        admit(heap, node, proximity)
    return checked, computed


def scan_shard(
    shard: ShardIndex,
    c: float,
    y: np.ndarray,
    ymax: float,
    heap: List[Tuple[float, int, int]],
    floor: float = 0.0,
    backend=None,
) -> Tuple[int, int]:
    """Scan one shard's members against the canonical heap, in place.

    Members arrive in descending row-norm order, so the first member
    whose Hölder bound ``c·||row||₁·max(y)`` drops below the cut-off
    certifies every later member is out too (their bounds are no
    larger) — the within-shard miniature of Lemma 2.  ``floor`` is an
    externally known θ (the gather side's running K-th proximity); the
    cut-off is ``max(floor, heap minimum)`` and only ever grows, so the
    prune stays sound mid-scan.

    ``backend`` selects the kernel backend (name, backend object, or
    ``None`` for the ``REPRO_KERNEL_BACKEND`` environment default); all
    backends are bit-identical, see :mod:`repro.query.backends`.

    Returns ``(n_checked, n_computed)``: members whose bound was
    evaluated, and members whose exact proximity was computed.
    """
    # Function-level import: repro.query.backends imports this module
    # for the reference loop above.
    from ..query.backends import get_backend

    return get_backend(backend).scan_shard(shard, c, y, ymax, heap, floor)


class ShardedIndex:
    """A built K-dash index split into bound-prunable shards.

    Construction does **not** refactorise anything: the global
    precomputation (reordering, LU, triangular inverses) happens once in
    :meth:`KDash.build`, and :meth:`from_index` re-slices its ``U^-1``
    rows by shard.  Shared, shard-invariant state — the seed-side
    ``L^-1``, the permutation, the exact per-query proximity mass — is
    held once (and persisted once, in the v3 manifest); each worker of a
    distributed deployment additionally holds only its own shard's rows,
    roughly ``1/n_shards`` of the answer-side index.

    Parameters mirror the persisted layout; build through
    :meth:`from_index` (or :func:`repro.core.index_io.load_sharded_index`).

    Examples
    --------
    >>> from repro.core import KDash
    >>> from repro.graph import star_graph
    >>> sharded = ShardedIndex.from_index(
    ...     KDash(star_graph(6), c=0.9).build(), 2, partitioner="range")
    >>> (sharded.n_shards, sharded.home_shard(0), sharded.home_shard(6))
    (2, 0, 1)
    >>> sorted(len(s.members) for s in sharded.shards)
    [3, 4]
    """

    def __init__(
        self,
        *,
        n: int,
        c: float,
        assignment: np.ndarray,
        partitioner: str,
        seed: int,
        position: Sequence[int],
        l_inv,
        total_mass_perm: np.ndarray,
        shards: List[Optional[ShardIndex]],
        summaries: List[ShardSummary],
        labels: Optional[List[str]] = None,
    ) -> None:
        self.n = int(n)
        self.c = float(c)
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.partitioner = str(partitioner)
        self.seed = int(seed)
        self.position = list(position)
        self.l_inv = l_inv
        self.total_mass_perm = np.asarray(total_mass_perm, dtype=np.float64)
        self.shards = shards
        self.summaries = summaries
        self.labels = labels
        if len(shards) != len(summaries):
            raise InvalidParameterError(
                "shards and summaries must have equal length"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index,
        n_shards: int,
        partitioner: str = "louvain",
        seed: int = 0,
    ) -> "ShardedIndex":
        """Slice a built :class:`~repro.core.kdash.KDash` into shards."""
        if not index.is_built:
            index.build()
        prepared = index.prepared
        graph = index.graph
        n = prepared.n
        assignment = shard_assignment(graph, n_shards, partitioner, seed)
        position = prepared.position
        indptr = prepared.uinv_indptr
        indices = prepared.uinv_indices
        data = prepared.uinv_data

        shards: List[ShardIndex] = []
        summaries: List[ShardSummary] = []
        for shard_id in range(n_shards):
            members = np.flatnonzero(assignment == shard_id)
            norms = []
            for u in members:
                lo, hi = indptr[position[u]], indptr[position[u] + 1]
                norms.append(float(data[lo:hi].sum()))
            # Descending row norm, ascending id on ties: the scan order.
            order = sorted(
                range(len(members)), key=lambda i: (-norms[i], int(members[i]))
            )
            scan_nodes = [int(members[i]) for i in order]
            scan_norms = [norms[i] for i in order]
            row_indptr = np.zeros(len(members) + 1, dtype=np.int64)
            slices = []
            colmax = np.zeros(n, dtype=np.float64)
            for out, u in enumerate(scan_nodes):
                lo, hi = indptr[position[u]], indptr[position[u] + 1]
                row_indptr[out + 1] = row_indptr[out] + (hi - lo)
                slices.append((lo, hi))
                np.maximum.at(colmax, indices[lo:hi], data[lo:hi])
            row_indices = (
                np.concatenate([indices[lo:hi] for lo, hi in slices])
                if slices
                else np.zeros(0, dtype=np.int64)
            )
            row_data = (
                np.concatenate([data[lo:hi] for lo, hi in slices])
                if slices
                else np.zeros(0, dtype=np.float64)
            )
            boundary = 0.0
            total = 0.0
            member_set = set(int(u) for u in members)
            for u in member_set:
                for v in graph.successors(u):
                    w = graph.edge_weight(u, v)
                    total += w
                    if v not in member_set:
                        boundary += w
            shards.append(
                ShardIndex(
                    shard_id,
                    members,
                    scan_nodes,
                    scan_norms,
                    row_indptr,
                    row_indices,
                    row_data,
                )
            )
            summaries.append(
                ShardSummary(
                    shard_id=shard_id,
                    n_members=len(scan_nodes),
                    rownorm_max=max(scan_norms, default=0.0),
                    boundary_frac=(boundary / total) if total else 0.0,
                    colmax=colmax,
                )
            )
        return cls(
            n=n,
            c=prepared.c,
            assignment=assignment,
            partitioner=partitioner,
            seed=seed,
            position=position,
            l_inv=prepared.l_inv,
            total_mass_perm=prepared.total_mass_perm,
            shards=shards,
            summaries=summaries,
            labels=list(graph.labels) if graph.labels else None,
        )

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.summaries)

    @property
    def spec(self) -> Tuple[int, str, int]:
        """``(n_shards, partitioner, seed)`` — enough to re-derive."""
        return (self.n_shards, self.partitioner, self.seed)

    def home_shard(self, node: int) -> int:
        """The shard owning ``node`` — where its scatter phase starts."""
        return int(self.assignment[node])

    def shard(self, shard_id: int) -> ShardIndex:
        """The payload of ``shard_id``; raises if not loaded (manifest-only)."""
        if not (0 <= shard_id < self.n_shards):
            raise InvalidParameterError(
                f"shard {shard_id} out of range (n_shards={self.n_shards})"
            )
        payload = self.shards[shard_id]
        if payload is None:
            raise InvalidParameterError(
                f"shard {shard_id} was not loaded into this process "
                "(manifest-only / partial load)"
            )
        return payload

    # ------------------------------------------------------------------
    # Workspace plumbing (mirrors PreparedIndex)
    # ------------------------------------------------------------------
    def workspace(self) -> np.ndarray:
        """A fresh all-zero dense seed workspace."""
        return np.zeros(self.n, dtype=np.float64)

    def scatter_column(self, y: np.ndarray, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter ``L^-1[:, position[node]]`` into ``y``.

        Returns ``(rows, vals)`` — the column's support, which both
        restores the workspace in O(nnz) and feeds the per-shard bound
        contraction.
        """
        rows, vals = self.l_inv.column(self.position[node])
        y[rows] = vals
        return rows, vals

    def clear_rows(self, y: np.ndarray, rows: np.ndarray) -> None:
        """Zero the rows previously touched by :meth:`scatter_column`."""
        y[rows] = 0.0

    def shard_bounds(
        self, rows: np.ndarray, vals: np.ndarray
    ) -> List[float]:
        """Per-shard proximity upper bounds for one scattered seed column."""
        return [s.bound(self.c, rows, vals) for s in self.summaries]
