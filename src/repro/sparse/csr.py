"""Compressed sparse row matrix.

CSR is the *row-access* format: ``row(i)`` is an :math:`O(1)` slice.  The
K-dash query path stores ``U^-1`` in CSR because each proximity evaluation
is a dot product of one row of ``U^-1`` against a dense workspace
(Equation 3 of the paper).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import SparseMatrixError


class CSRMatrix:
    """Immutable CSR matrix with the operations the library needs.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        ``n_rows + 1`` row-pointer array; row ``i`` occupies the slice
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column index of each stored entry, sorted within each row.
    data:
        Value of each stored entry.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.size != n_rows + 1:
            raise SparseMatrixError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise SparseMatrixError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseMatrixError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise SparseMatrixError("indices and data must have equal length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise SparseMatrixError("column index out of bounds")

    # ------------------------------------------------------------------
    # Properties and element access
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i``."""
        if not (0 <= i < self.shape[0]):
            raise SparseMatrixError(f"row {i} out of range for shape {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_dot(self, i: int, x: np.ndarray) -> float:
        """Dot product of row ``i`` with dense vector ``x`` in O(nnz(row))."""
        idx, vals = self.row(i)
        if idx.size == 0:
            return 0.0
        return float(vals @ x[idx])

    def get(self, i: int, j: int) -> float:
        """Value at ``(i, j)`` (0.0 when not stored); O(log nnz(row))."""
        idx, vals = self.row(i)
        pos = np.searchsorted(idx, j)
        if pos < idx.size and idx[pos] == j:
            return float(vals[pos])
        return 0.0

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a dense vector ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise SparseMatrixError(
                f"vector has shape {x.shape}, expected ({self.shape[1]},)"
            )
        out = np.zeros(self.shape[0], dtype=np.float64)
        contrib = self.data * x[self.indices]
        # Row ids of every stored entry, then segment-sum per row.
        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        np.add.at(out, row_ids, contrib)
        return out

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ x`` for a dense vector ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[0],):
            raise SparseMatrixError(
                f"vector has shape {x.shape}, expected ({self.shape[0]},)"
            )
        out = np.zeros(self.shape[1], dtype=np.float64)
        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        np.add.at(out, self.indices, self.data * x[row_ids])
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""
        from .coo import COOMatrix

        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, row_ids, self.indices, self.data)

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC (via COO; :math:`O(\\text{nnz}\\log\\text{nnz})`)."""
        return self.to_coo().to_csc()

    def transpose(self) -> "CSRMatrix":
        """Transpose: the CSC view of this matrix reinterpreted as CSR."""
        csc = self.to_csc()
        return CSRMatrix(
            (self.shape[1], self.shape[0]), csc.indptr, csc.indices, csc.data
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array."""
        return self.to_coo().to_dense()

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix`."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix (converted to CSR first)."""
        mat = mat.tocsr()
        mat.sort_indices()
        return cls(mat.shape, mat.indptr, mat.indices, mat.data)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense 2-D array."""
        from .coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The ``n x n`` identity matrix."""
        from .coo import COOMatrix

        return COOMatrix.identity(n).to_csr()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csc import CSCMatrix
