"""Sparse triangular solves and triangular inversion.

These kernels implement the numerical heart of the paper's Section 4.2:
computing the sparse inverses ``L^-1`` and ``U^-1`` of the LU factors of
``W = I - (1-c)A`` (Equations 4 and 5), and solving triangular systems
with *sparse* right-hand sides so the work is proportional to the size of
the output, not to :math:`n`.

The central routine is :func:`sparse_lower_inverse`: for each column ``j``
it (1) finds the set of rows reachable from ``j`` in the directed graph of
``L`` via depth-first search (the classic Gilbert–Peierls *reach*), and
(2) runs forward substitution over exactly that set.  Total cost is
:math:`O(\\text{nnz}(L^{-1}))` plus sorting overhead — linear in the size
of the answer, which is what makes the paper's "practically O(n+m)" claim
achievable.

Upper-triangular inversion reuses the same kernel through transposition:
``U^-1 = (lower_inverse(U^T))^T``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import DecompositionError, SparseMatrixError
from .csc import CSCMatrix


def _check_square(mat: CSCMatrix, name: str) -> int:
    if mat.shape[0] != mat.shape[1]:
        raise SparseMatrixError(f"{name} must be square, got shape {mat.shape}")
    return mat.shape[0]


def lower_triangular_solve(L: CSCMatrix, b: np.ndarray, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L x = b`` by forward substitution with a dense RHS.

    Parameters
    ----------
    L:
        Lower-triangular CSC matrix.  Entries above the diagonal, if
        present, raise :class:`~repro.exceptions.SparseMatrixError`.
    b:
        Dense right-hand side of length ``n``.
    unit_diagonal:
        When ``True`` the diagonal of ``L`` is taken to be all ones and
        stored diagonal entries are ignored (Doolittle convention used by
        the paper's Equation 6, where ``L_ii = 1``).

    Returns
    -------
    numpy.ndarray
        The dense solution vector ``x``.
    """
    n = _check_square(L, "L")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise SparseMatrixError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    for j in range(n):
        rows, vals = L.column(j)
        if rows.size and rows[0] < j:
            raise SparseMatrixError("matrix is not lower triangular")
        if not unit_diagonal:
            diag = 0.0
            if rows.size and rows[0] == j:
                diag = vals[0]
            if diag == 0.0:
                raise DecompositionError(f"zero diagonal at column {j} in lower solve")
            x[j] /= diag
        if x[j] != 0.0:
            below = rows > j
            if np.any(below):
                x[rows[below]] -= vals[below] * x[j]
    return x


def upper_triangular_solve(U: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` by backward substitution with a dense RHS.

    ``U`` must be upper-triangular CSC with nonzero diagonal (Crout's
    Equation 7 guarantees this for ``W = I - (1-c)A``).
    """
    n = _check_square(U, "U")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise SparseMatrixError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    for j in range(n - 1, -1, -1):
        rows, vals = U.column(j)
        if rows.size and rows[-1] > j:
            raise SparseMatrixError("matrix is not upper triangular")
        diag = 0.0
        if rows.size and rows[-1] == j:
            diag = vals[-1]
        if diag == 0.0:
            raise DecompositionError(f"zero diagonal at column {j} in upper solve")
        x[j] /= diag
        if x[j] != 0.0:
            above = rows < j
            if np.any(above):
                x[rows[above]] -= vals[above] * x[j]
    return x


def _reach_lower(
    col_rows: List[np.ndarray], seeds: np.ndarray, n: int, marker: np.ndarray, stamp: int
) -> List[int]:
    """Rows reachable from ``seeds`` through the DAG of a lower-triangular
    matrix (edge ``j -> i`` for every stored ``L[i, j]`` with ``i > j``).

    Iterative DFS; ``marker``/``stamp`` implement O(1) amortised visited
    flags without reallocating per call.  The result is unsorted.
    """
    reach: List[int] = []
    stack: List[int] = []
    for s in seeds:
        s = int(s)
        if marker[s] != stamp:
            marker[s] = stamp
            stack.append(s)
            reach.append(s)
        while stack:
            j = stack.pop()
            for i in col_rows[j]:
                i = int(i)
                if marker[i] != stamp:
                    marker[i] = stamp
                    stack.append(i)
                    reach.append(i)
    return reach


def sparse_unit_lower_solve_sparse_rhs(
    L: CSCMatrix,
    rhs_rows: np.ndarray,
    rhs_vals: np.ndarray,
    workspace: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``L x = b`` for *unit* lower-triangular ``L`` and sparse ``b``.

    Only the rows reachable from the support of ``b`` are touched, so the
    cost is proportional to ``nnz(x)``.  Used by the left-looking Crout
    factorisation (:mod:`repro.lu.crout`) and by triangular inversion.

    Returns ``(rows, values)`` of the sparse solution, with ``rows``
    sorted ascending and exact zeros dropped.
    """
    n = _check_square(L, "L")
    rhs_rows = np.asarray(rhs_rows, dtype=np.int64)
    rhs_vals = np.asarray(rhs_vals, dtype=np.float64)
    col_rows, col_vals = _strict_lower_columns(L)
    marker = np.full(n, -1, dtype=np.int64)
    if workspace is None:
        workspace = np.zeros(n, dtype=np.float64)
    reach = _reach_lower(col_rows, rhs_rows, n, marker, 0)
    reach.sort()
    workspace[rhs_rows] = rhs_vals
    out_rows = []
    out_vals = []
    for j in reach:
        xj = workspace[j]
        if xj != 0.0:
            rows_j = col_rows[j]
            if rows_j.size:
                workspace[rows_j] -= col_vals[j] * xj
            out_rows.append(j)
            out_vals.append(xj)
    # Reset workspace for reuse by the caller.
    workspace[np.asarray(reach, dtype=np.int64)] = 0.0
    return np.asarray(out_rows, dtype=np.int64), np.asarray(out_vals, dtype=np.float64)


def _strict_lower_columns(L: CSCMatrix) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Split a lower-triangular CSC into per-column strictly-below-diagonal
    ``(rows, values)`` arrays, validating triangularity once up front."""
    n = L.shape[0]
    col_rows: List[np.ndarray] = []
    col_vals: List[np.ndarray] = []
    for j in range(n):
        rows, vals = L.column(j)
        if rows.size and rows[0] < j:
            raise SparseMatrixError("matrix is not lower triangular")
        below = rows > j
        col_rows.append(rows[below].copy())
        col_vals.append(vals[below].copy())
    return col_rows, col_vals


def sparse_lower_inverse(L: CSCMatrix, unit_diagonal: bool = True) -> CSCMatrix:
    """Invert a sparse lower-triangular matrix, keeping the result sparse.

    Implements Equation 4 of the paper via reach-based forward
    substitution: column ``j`` of ``L^-1`` solves ``L x = e_j`` and its
    support is exactly the set of rows reachable from ``j`` in the graph
    of ``L``.  Cost: :math:`O(\\text{nnz}(L^{-1}))` numeric work in numpy
    slices plus a per-column sort of the reach set.

    Parameters
    ----------
    L:
        Lower-triangular CSC matrix.
    unit_diagonal:
        ``True`` for Doolittle factors (``L_ii = 1``, the paper's
        convention).  When ``False`` the stored diagonal is used and must
        be nonzero.

    Returns
    -------
    CSCMatrix
        ``L^-1`` in CSC format with sorted row indices per column.
    """
    n = _check_square(L, "L")
    col_rows, col_vals = _strict_lower_columns(L)
    diag = np.ones(n, dtype=np.float64)
    if not unit_diagonal:
        for j in range(n):
            rows, vals = L.column(j)
            if rows.size and rows[0] == j:
                diag[j] = vals[0]
            else:
                raise DecompositionError(f"missing diagonal at column {j}")
            if diag[j] == 0.0:
                raise DecompositionError(f"zero diagonal at column {j}")

    marker = np.full(n, -1, dtype=np.int64)
    workspace = np.zeros(n, dtype=np.float64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    all_rows: List[np.ndarray] = []
    all_vals: List[np.ndarray] = []

    for j in range(n):
        reach = _reach_lower(col_rows, np.array([j], dtype=np.int64), n, marker, j)
        reach.sort()
        workspace[j] = 1.0
        rows_out = []
        vals_out = []
        for k in reach:
            xk = workspace[k] / diag[k]
            if xk != 0.0:
                rows_k = col_rows[k]
                if rows_k.size:
                    workspace[rows_k] -= col_vals[k] * xk
                rows_out.append(k)
                vals_out.append(xk)
        workspace[np.asarray(reach, dtype=np.int64)] = 0.0
        all_rows.append(np.asarray(rows_out, dtype=np.int64))
        all_vals.append(np.asarray(vals_out, dtype=np.float64))
        indptr[j + 1] = indptr[j] + len(rows_out)

    indices = np.concatenate(all_rows) if all_rows else np.zeros(0, dtype=np.int64)
    data = np.concatenate(all_vals) if all_vals else np.zeros(0, dtype=np.float64)
    return CSCMatrix((n, n), indptr, indices, data)


def sparse_upper_inverse(U: CSCMatrix) -> CSCMatrix:
    """Invert a sparse upper-triangular matrix, keeping the result sparse.

    Implements Equation 5 of the paper by reduction to the lower-triangular
    kernel: ``U^-1 = (lower_inverse(U^T))^T``.  The diagonal of ``U`` must
    be nonzero (guaranteed for Crout factors of ``W``).
    """
    Ut = U.transpose()
    inv_t = sparse_lower_inverse(Ut, unit_diagonal=False)
    return inv_t.transpose()
