"""Free-function linear algebra helpers over the sparse kernel.

These are thin, well-tested wrappers used across the library:
``sparse_matvec`` dispatches on matrix type, ``sparse_matmat`` multiplies
two of our sparse matrices (used only in tests and small precomputations —
production paths go through scipy), ``sparse_column_max`` extracts the
per-column maxima needed by the tree estimator (``Amax(v)``,
Section 4.3.1), and ``sparse_row_dot`` is the query-time kernel
``p_u = c * U^-1[u, :] . y``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..exceptions import SparseMatrixError
from .csc import CSCMatrix
from .csr import CSRMatrix

SparseMatrix = Union[CSRMatrix, CSCMatrix]


def sparse_matvec(mat: SparseMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``mat @ x`` for either CSR or CSC input."""
    if isinstance(mat, (CSRMatrix, CSCMatrix)):
        return mat.matvec(x)
    raise SparseMatrixError(f"unsupported matrix type {type(mat).__name__}")


def sparse_matmat(a: SparseMatrix, b: SparseMatrix) -> CSRMatrix:
    """Multiply two sparse matrices, returning CSR.

    Implemented as a row-by-row sparse accumulation; intended for tests
    and small matrices (e.g. verifying ``L @ U == W``), not for hot paths.
    """
    if a.shape[1] != b.shape[0]:
        raise SparseMatrixError(
            f"shape mismatch for matmul: {a.shape} @ {b.shape}"
        )
    a_csr = a if isinstance(a, CSRMatrix) else a.to_csr()
    b_csr = b if isinstance(b, CSRMatrix) else b.to_csr()
    n_rows, n_cols = a.shape[0], b.shape[1]
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    rows_out = []
    vals_out = []
    workspace = np.zeros(n_cols, dtype=np.float64)
    touched = np.full(n_cols, -1, dtype=np.int64)
    for i in range(n_rows):
        cols_i, vals_i = a_csr.row(i)
        active = []
        for k, av in zip(cols_i, vals_i):
            cols_k, vals_k = b_csr.row(int(k))
            for j, bv in zip(cols_k, vals_k):
                j = int(j)
                if touched[j] != i:
                    touched[j] = i
                    workspace[j] = 0.0
                    active.append(j)
                workspace[j] += av * bv
        active.sort()
        row_cols = np.asarray(active, dtype=np.int64)
        row_vals = workspace[row_cols]
        keep = row_vals != 0.0
        rows_out.append(row_cols[keep])
        vals_out.append(row_vals[keep])
        indptr[i + 1] = indptr[i] + int(keep.sum())
    indices = np.concatenate(rows_out) if rows_out else np.zeros(0, dtype=np.int64)
    data = np.concatenate(vals_out) if vals_out else np.zeros(0, dtype=np.float64)
    return CSRMatrix((n_rows, n_cols), indptr, indices, data)


def sparse_column_max(mat: CSCMatrix) -> np.ndarray:
    """Per-column maxima of a CSC matrix; zero for empty columns.

    For the column-normalised transition matrix this yields the array
    ``Amax(v)`` used by Definition 1 of the paper.  The global maximum
    ``Amax`` is simply ``sparse_column_max(A).max()``.
    """
    if not isinstance(mat, CSCMatrix):
        raise SparseMatrixError("sparse_column_max expects a CSCMatrix")
    n_cols = mat.shape[1]
    out = np.zeros(n_cols, dtype=np.float64)
    counts = np.diff(mat.indptr)
    if mat.data.size:
        col_ids = np.repeat(np.arange(n_cols, dtype=np.int64), counts)
        np.maximum.at(out, col_ids, mat.data)
    return out


def sparse_row_dot(mat: CSRMatrix, i: int, x: np.ndarray) -> float:
    """Dot product of row ``i`` of a CSR matrix with dense vector ``x``.

    This is the per-node proximity evaluation of K-dash's query path:
    ``p_u = c * U^-1[u, :] . (L^-1 e_q)`` costs one call per candidate.
    """
    if not isinstance(mat, CSRMatrix):
        raise SparseMatrixError("sparse_row_dot expects a CSRMatrix")
    return mat.row_dot(i, x)
