"""Minimal sparse-matrix kernel used by the from-scratch LU pipeline.

The paper stores the triangular inverses ``L^-1`` and ``U^-1`` in an
*adjacency-list representation* (Section 4.2).  This subpackage provides
exactly that: compressed sparse row/column matrices
(:class:`~repro.sparse.csr.CSRMatrix`, :class:`~repro.sparse.csc.CSCMatrix`),
a coordinate-format builder (:class:`~repro.sparse.coo.COOMatrix`), and
reach-based sparse triangular solves
(:mod:`repro.sparse.triangular`) that touch only the nonzero pattern.

The classes interoperate with :mod:`scipy.sparse` (``to_scipy`` /
``from_scipy``) so the high-performance SuperLU backend and the pure-Python
Crout backend can share every downstream component.
"""

from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .linalg import (
    sparse_column_max,
    sparse_matmat,
    sparse_matvec,
    sparse_row_dot,
)
from .triangular import (
    lower_triangular_solve,
    sparse_lower_inverse,
    sparse_unit_lower_solve_sparse_rhs,
    sparse_upper_inverse,
    upper_triangular_solve,
)

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "sparse_column_max",
    "sparse_matmat",
    "sparse_matvec",
    "sparse_row_dot",
    "lower_triangular_solve",
    "upper_triangular_solve",
    "sparse_lower_inverse",
    "sparse_upper_inverse",
    "sparse_unit_lower_solve_sparse_rhs",
]
