"""Coordinate-format sparse matrix: the builder format.

:class:`COOMatrix` is the format every other sparse class is constructed
through.  It stores parallel ``rows`` / ``cols`` / ``data`` arrays, allows
duplicates (summed on conversion, matching scipy semantics), and converts
to CSR/CSC in :math:`O(\\text{nnz} \\log \\text{nnz})`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..exceptions import SparseMatrixError


class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows, cols:
        Integer arrays of equal length with the coordinates of each entry.
    data:
        Float array of entry values, same length as ``rows``.

    Duplicate coordinates are permitted and are *summed* when converting to
    CSR/CSC, which makes COO convenient for accumulating edge weights.
    """

    __slots__ = ("shape", "rows", "cols", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: Iterable[int],
        cols: Iterable[int],
        data: Iterable[float],
    ) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise SparseMatrixError(f"shape must be non-negative, got {shape!r}")
        self.shape = (n_rows, n_cols)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise SparseMatrixError(
                "rows, cols and data must have identical lengths, got "
                f"{self.rows.size}, {self.cols.size}, {self.data.size}"
            )
        if self.rows.size:
            if self.rows.min(initial=0) < 0 or self.rows.max(initial=-1) >= n_rows:
                raise SparseMatrixError("row index out of bounds")
            if self.cols.min(initial=0) < 0 or self.cols.max(initial=-1) >= n_cols:
                raise SparseMatrixError("column index out of bounds")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(self.data.size)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        return cls(shape, [], [], [])

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, keeping only nonzero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise SparseMatrixError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def identity(cls, n: int) -> "COOMatrix":
        """The ``n x n`` identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), idx, idx, np.ones(n))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR, summing duplicate coordinates."""
        from .csr import CSRMatrix

        indptr, indices, data = _compress(
            self.shape[0], self.rows, self.cols, self.data
        )
        return CSRMatrix(self.shape, indptr, indices, data)

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC, summing duplicate coordinates."""
        from .csc import CSCMatrix

        indptr, indices, data = _compress(
            self.shape[1], self.cols, self.rows, self.data
        )
        return CSCMatrix(self.shape, indptr, indices, data)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def to_scipy(self):
        """Convert to a :class:`scipy.sparse.coo_matrix`."""
        import scipy.sparse as sp

        return sp.coo_matrix((self.data, (self.rows, self.cols)), shape=self.shape)

    def transpose(self) -> "COOMatrix":
        """Return the transpose (cheap: swaps the coordinate arrays)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]), self.cols, self.rows, self.data
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"


def _compress(
    n_major: int,
    major: np.ndarray,
    minor: np.ndarray,
    data: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress triplets along ``major``, sorting by (major, minor) and
    summing duplicates.  Shared by ``to_csr`` and ``to_csc``.
    """
    if data.size == 0:
        return (
            np.zeros(n_major + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
    order = np.lexsort((minor, major))
    major = major[order]
    minor = minor[order]
    data = data[order]
    # Collapse duplicate (major, minor) pairs by summation.
    new_group = np.empty(major.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (major[1:] != major[:-1]) | (minor[1:] != minor[:-1])
    group_ids = np.cumsum(new_group) - 1
    n_groups = int(group_ids[-1]) + 1
    summed = np.zeros(n_groups, dtype=np.float64)
    np.add.at(summed, group_ids, data)
    major_u = major[new_group]
    minor_u = minor[new_group]
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.add.at(indptr, major_u + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, minor_u, summed


# Imported at the bottom only for type checkers; runtime imports are local
# inside the conversion methods to avoid a circular import.
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from .csc import CSCMatrix
    from .csr import CSRMatrix
