"""Compressed sparse column matrix.

CSC is the *column-access* format: ``column(j)`` is an :math:`O(1)` slice.
The K-dash index stores ``L^-1`` in CSC because every query starts by
extracting column ``q`` of ``L^-1`` (Equation 3 of the paper), and the
column-normalised transition matrix ``A`` is naturally CSC (column ``v``
holds the out-transition probabilities of node ``v``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import SparseMatrixError


class CSCMatrix:
    """Immutable CSC matrix with the operations the library needs.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        ``n_cols + 1`` column-pointer array; column ``j`` occupies the
        slice ``indices[indptr[j]:indptr[j+1]]``.
    indices:
        Row index of each stored entry, sorted within each column.
    data:
        Value of each stored entry.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.size != n_cols + 1:
            raise SparseMatrixError(
                f"indptr must have length n_cols+1={n_cols + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise SparseMatrixError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseMatrixError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise SparseMatrixError("indices and data must have equal length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n_rows
        ):
            raise SparseMatrixError("row index out of bounds")

    # ------------------------------------------------------------------
    # Properties and element access
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` views of column ``j``."""
        if not (0 <= j < self.shape[1]):
            raise SparseMatrixError(f"column {j} out of range for shape {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def get(self, i: int, j: int) -> float:
        """Value at ``(i, j)`` (0.0 when not stored); O(log nnz(col))."""
        idx, vals = self.column(j)
        pos = np.searchsorted(idx, i)
        if pos < idx.size and idx[pos] == i:
            return float(vals[pos])
        return 0.0

    def column_max(self, j: int) -> float:
        """Maximum stored value in column ``j`` (0.0 for an empty column).

        This is ``Amax(v)`` from Section 4.3.1 of the paper when applied to
        the transition matrix: the largest single-step probability out of
        node ``v``.  Zero-weight entries are never stored, so the result of
        an empty column is 0, matching a dangling node.
        """
        _, vals = self.column(j)
        if vals.size == 0:
            return 0.0
        return float(vals.max())

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a dense vector ``x`` (scatter per column)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise SparseMatrixError(
                f"vector has shape {x.shape}, expected ({self.shape[1]},)"
            )
        out = np.zeros(self.shape[0], dtype=np.float64)
        col_ids = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
        )
        np.add.at(out, self.indices, self.data * x[col_ids])
        return out

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ x`` for a dense vector ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[0],):
            raise SparseMatrixError(
                f"vector has shape {x.shape}, expected ({self.shape[0]},)"
            )
        out = np.zeros(self.shape[1], dtype=np.float64)
        col_ids = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
        )
        np.add.at(out, col_ids, self.data * x[self.indices])
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""
        from .coo import COOMatrix

        col_ids = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, self.indices, col_ids, self.data)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR (via COO; :math:`O(\\text{nnz}\\log\\text{nnz})`)."""
        return self.to_coo().to_csr()

    def transpose(self) -> "CSCMatrix":
        """Transpose: the CSR view of this matrix reinterpreted as CSC."""
        csr = self.to_csr()
        return CSCMatrix(
            (self.shape[1], self.shape[0]), csr.indptr, csr.indices, csr.data
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array."""
        return self.to_coo().to_dense()

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csc_matrix`."""
        import scipy.sparse as sp

        return sp.csc_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSCMatrix":
        """Build from any scipy sparse matrix (converted to CSC first)."""
        mat = mat.tocsc()
        mat.sort_indices()
        return cls(mat.shape, mat.indptr, mat.indices, mat.data)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build from a dense 2-D array."""
        from .coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csc()

    @classmethod
    def identity(cls, n: int) -> "CSCMatrix":
        """The ``n x n`` identity matrix."""
        from .coo import COOMatrix

        return COOMatrix.identity(n).to_csc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"


from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csr import CSRMatrix
