#!/usr/bin/env python
"""Link prediction on a co-authorship network (Liben-Nowell & Kleinberg).

The paper's Section 2: "the probability of a future collaboration between
authors is computed from RWR proximity ... two researchers who are close
in the network will have many colleagues in common, and thus are more
likely to collaborate in the near future."

Protocol: generate a collaboration network, hide 15% of its (undirected)
edges, then for a set of authors ask each scorer to rank candidate future
collaborators.  Score = fraction of hidden edges recovered in the top-k
(the standard link-prediction precision).  Scorers: exact RWR via K-dash,
the random predictor, and common-neighbours.

Run with::

    python examples/link_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro import KDash
from repro.graph import DiGraph, planted_partition_graph


def split_edges(graph: DiGraph, holdout_fraction: float, seed: int):
    """Partition undirected edges into (training graph, hidden pairs)."""
    rng = np.random.default_rng(seed)
    undirected = sorted(
        {(min(u, v), max(u, v)) for u, v, _ in graph.edges() if u != v}
    )
    rng.shuffle(undirected)
    n_hidden = int(holdout_fraction * len(undirected))
    hidden = set(undirected[:n_hidden])
    train = DiGraph(graph.n_nodes)
    for u, v, w in graph.edges():
        if (min(u, v), max(u, v)) not in hidden:
            train.add_edge(u, v, w)
    return train, hidden


def common_neighbors_scores(train: DiGraph, author: int) -> np.ndarray:
    """The classic common-neighbours heuristic."""
    neighbors = set(train.successors(author)) | set(train.predecessors(author))
    scores = np.zeros(train.n_nodes)
    for v in range(train.n_nodes):
        if v == author:
            continue
        theirs = set(train.successors(v)) | set(train.predecessors(v))
        scores[v] = len(neighbors & theirs)
    return scores


def evaluate(train, hidden, authors, k, scorer) -> float:
    """Mean fraction of an author's hidden edges recovered in top-k."""
    recovered = []
    for author in authors:
        my_hidden = {
            b if a == author else a
            for (a, b) in hidden
            if author in (a, b)
        }
        if not my_hidden:
            continue
        existing = set(train.successors(author)) | {author}
        ranked = [v for v in scorer(author) if v not in existing][:k]
        recovered.append(len(my_hidden & set(ranked)) / min(len(my_hidden), k))
    return float(np.mean(recovered)) if recovered else 0.0


def main() -> None:
    graph = planted_partition_graph(
        [60] * 6, p_in=0.25, p_out=0.004, weight_scale=1.0, seed=17
    )
    train, hidden = split_edges(graph, holdout_fraction=0.15, seed=18)
    print(
        f"co-authorship network: {graph.n_nodes} authors, "
        f"{len(hidden)} collaborations hidden"
    )

    index = KDash(train, c=0.85).build()
    rng = np.random.default_rng(19)
    authors = rng.choice(graph.n_nodes, size=40, replace=False).tolist()
    k = 10

    def rwr_scorer(author):
        result = index.top_k(author, k=60)
        return [node for node, _ in result.items]

    def cn_scorer(author):
        scores = common_neighbors_scores(train, author)
        return list(np.argsort(-scores))

    def random_scorer(author):
        order = rng.permutation(train.n_nodes)
        return [int(v) for v in order]

    rwr = evaluate(train, hidden, authors, k, rwr_scorer)
    cn = evaluate(train, hidden, authors, k, cn_scorer)
    rand = evaluate(train, hidden, authors, k, random_scorer)

    print(f"\nhidden-collaboration recovery @ top-{k} "
          f"(mean over {len(authors)} authors):")
    print(f"  RWR proximity (K-dash, exact): {rwr:.3f}")
    print(f"  common neighbours:             {cn:.3f}")
    print(f"  random prediction:             {rand:.3f}")
    print(
        "\nexpected shape (paper, Liben-Nowell & Kleinberg): RWR >> random, "
        "and RWR competitive with or better than common neighbours"
    )
    assert rwr > rand, "RWR must beat the random predictor"


if __name__ == "__main__":
    main()
