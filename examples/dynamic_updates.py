#!/usr/bin/env python
"""Exact top-k search on a changing graph (DynamicKDash).

The paper's index is a one-time precomputation over a static graph.
Real trust/collaboration networks change constantly, and rebuilding the
index per edge is wasteful.  ``DynamicKDash`` absorbs edge insertions,
deletions and re-weightings through exact low-rank (Woodbury)
corrections: queries remain *exact* at every moment, and a periodic
``rebuild()`` flattens the accumulated updates to restore the pruned
fast path.

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DynamicKDash, direct_solve_rwr
from repro.graph import column_normalized_adjacency, scale_free_digraph


def verify_exact(dyn: DynamicKDash, query: int) -> None:
    expected = direct_solve_rwr(
        column_normalized_adjacency(dyn.graph), query, dyn.c
    )
    got = dyn.proximity_column(query)
    assert np.allclose(got, expected, atol=1e-8), "dynamic index drifted!"


def main() -> None:
    rng = np.random.default_rng(7)
    graph = scale_free_digraph(1_500, 6_000, seed=7)
    dyn = DynamicKDash(graph, c=0.95, rebuild_threshold=None)
    query = 11

    result = dyn.top_k(query, 5)
    print(f"t=0 (clean index)      top-5: {result.nodes}  "
          f"computed {result.n_computed}/{graph.n_nodes}")

    # A stream of trust events: new edges, revoked edges, weight changes.
    events = []
    for step in range(12):
        u, v = int(rng.integers(1_500)), int(rng.integers(1_500))
        if u == v:
            continue
        if dyn.graph.has_edge(u, v) and step % 3 == 0:
            dyn.remove_edge(u, v)
            events.append(f"remove {u}->{v}")
        else:
            dyn.add_edge(u, v, float(rng.integers(1, 4)))
            events.append(f"add {u}->{v}")
    print(f"\napplied {len(events)} edge events "
          f"({dyn.n_pending_columns} transition columns touched):")
    for event in events[:5]:
        print(f"  {event}")
    print("  ...")

    t0 = time.perf_counter()
    result = dyn.top_k(query, 5)
    corrected_ms = (time.perf_counter() - t0) * 1e3
    verify_exact(dyn, query)
    print(f"\nt=1 (pending updates)  top-5: {result.nodes}  "
          f"[exact via Woodbury correction, {corrected_ms:.2f} ms/query]")

    t0 = time.perf_counter()
    dyn.rebuild()
    rebuild_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = dyn.top_k(query, 5)
    pruned_ms = (time.perf_counter() - t0) * 1e3
    verify_exact(dyn, query)
    print(f"t=2 (after rebuild)    top-5: {result.nodes}  "
          f"[pruned search restored, {pruned_ms:.2f} ms/query; "
          f"rebuild took {rebuild_s:.2f}s]")

    print("\nexactness verified against the direct solver at every stage")


if __name__ == "__main__":
    main()
