#!/usr/bin/env python
"""Serving exact top-k search on a changing graph (QueryEngine + DynamicKDash).

The paper's index is a one-time precomputation over a static graph.
Real trust/collaboration networks change constantly, and rebuilding the
index per edge is wasteful.  This example drives the full dynamic
serving loop through one :class:`~repro.query.engine.QueryEngine`
handle:

1. serve queries from the pruned fast path (and its LRU cache);
2. push a batch of edge updates through ``engine.apply_updates`` — the
   epoch bumps and the cache is invalidated atomically;
3. keep serving: queries transparently switch to the exact low-rank
   (Woodbury) corrected path, verified here against a direct solver;
4. let the :class:`~repro.query.engine.RebuildPolicy` flatten the
   accumulated updates into a fresh index once the correction rank
   grows, restoring the fast path — same handle, zero downtime.

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicKDash, QueryEngine, RebuildPolicy, direct_solve_rwr
from repro.graph import column_normalized_adjacency, scale_free_digraph


def verify_exact(engine: QueryEngine, query: int) -> None:
    dyn = engine.dynamic
    expected = direct_solve_rwr(
        column_normalized_adjacency(dyn.graph), query, dyn.c
    )
    got = dyn.proximity_column(query)
    assert np.allclose(got, expected, atol=1e-8), "dynamic index drifted!"


def random_batch(rng, graph, size: int):
    """A small burst of trust events: new edges, revoked edges."""
    inserts, deletes = [], []
    n = graph.n_nodes
    while len(inserts) + len(deletes) < size:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        if graph.has_edge(u, v) and rng.random() < 0.3:
            deletes.append((u, v))
        elif not graph.has_edge(u, v):
            inserts.append((u, v, float(rng.integers(1, 4))))
    return inserts, deletes


def main() -> None:
    rng = np.random.default_rng(7)
    graph = scale_free_digraph(1_200, 5_000, seed=7)
    dyn = DynamicKDash(graph, c=0.95, rebuild_threshold=None)
    engine = QueryEngine(dyn, rebuild_policy=RebuildPolicy(max_rank=8))
    query = 11

    # -- t=0: clean index, pruned fast path -----------------------------
    result = engine.top_k(query, 5)
    print(f"t=0 (clean index)      top-5: {result.nodes}  "
          f"computed {result.n_computed}/{graph.n_nodes}, "
          f"epoch {engine.epoch}")
    assert engine.top_k(query, 5) is result
    print(f"                       repeat query served from cache "
          f"({engine.cache_info()[0]} entries)")

    # -- t=1: one update batch, exact corrected serving -----------------
    inserts, deletes = random_batch(rng, dyn.graph, 6)
    report = engine.apply_updates(inserts, deletes)
    print(f"\nt=1 applied batch of +{report.n_inserted}/-{report.n_deleted} "
          f"edges in {report.seconds * 1e3:.2f} ms: epoch {engine.epoch}, "
          f"correction rank {report.pending_rank}, "
          f"cache invalidated ({engine.cache_info()[0]} entries)")
    result = engine.top_k(query, 5)
    stats = engine.last_stats
    verify_exact(engine, query)
    print(f"t=1 (pending updates)  top-5: {result.nodes}  "
          f"[corrected={stats.corrected}, exact via Woodbury, "
          f"{stats.seconds * 1e3:.2f} ms]")

    # -- t=2..: keep updating until the rebuild policy fires ------------
    batches = 0
    while engine.stats.rebuilds == 0:
        inserts, deletes = random_batch(rng, dyn.graph, 3)
        report = engine.apply_updates(inserts, deletes)
        batches += 1
    print(f"\nt=2 after {batches} more batches the policy rebuilt the index "
          f"(rank limit {engine.rebuild_policy.max_rank}): "
          f"pending rank {dyn.n_pending_columns}, "
          f"rebuilds {engine.stats.rebuilds}")

    result = engine.top_k(query, 5)
    stats = engine.last_stats
    verify_exact(engine, query)
    print(f"t=2 (fresh fast path)  top-5: {result.nodes}  "
          f"[corrected={stats.corrected}, computed "
          f"{result.n_computed}/{graph.n_nodes}, {stats.seconds * 1e3:.2f} ms]")

    agg = engine.stats
    print(f"\nengine lifetime: {agg.queries_served} queries, "
          f"{agg.updates_applied} edge updates in {agg.update_batches} batches, "
          f"{agg.invalidations} cache invalidations, {agg.rebuilds} rebuild, "
          f"{agg.corrected_queries} corrected scans")
    print("exactness verified against the direct solver at every stage")


if __name__ == "__main__":
    main()
