#!/usr/bin/env python
"""Quickstart: build a K-dash index and run exact top-k RWR queries.

Run with::

    python examples/quickstart.py

Covers the 90% use case in ~40 lines: create a graph, build the index
once, query it many times, inspect the search statistics, and verify the
result against the brute-force solver.
"""

from repro import KDash, direct_solve_rwr, top_k_from_vector
from repro.graph import column_normalized_adjacency, scale_free_digraph


def main() -> None:
    # 1. A directed, weighted graph.  Any DiGraph works; here we use a
    #    synthetic scale-free network (2,000 nodes, ~8,000 edges).
    graph = scale_free_digraph(2_000, 8_000, seed=42)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")

    # 2. Build the index once.  This runs the hybrid reordering, the LU
    #    decomposition of W = I - (1-c)A, and the sparse triangular
    #    inversions (the paper's Section 4.2 precomputation).
    index = KDash(graph, c=0.95).build()
    report = index.build_report
    print(
        f"build: {report.total_seconds:.2f}s, "
        f"index nnz = {index.index_nnz:,} "
        f"({report.fill_in.inverse_ratio:.1f}x the edge count)"
    )

    # 3. Query: the 10 nodes most relevant to node 7, exactly.
    result = index.top_k(query=7, k=10)
    print(f"\ntop-10 for node 7 (searched {result.n_computed} of "
          f"{graph.n_nodes} nodes, early stop: {result.terminated_early}):")
    for rank, (node, proximity) in enumerate(result.items, start=1):
        print(f"  {rank:2d}. node {node:5d}  proximity {proximity:.6f}")

    # 4. Exactness check against the brute-force linear solve.
    adjacency = column_normalized_adjacency(graph)
    brute_force = top_k_from_vector(direct_solve_rwr(adjacency, 7, 0.95), 10)
    assert [round(p, 10) for _, p in brute_force] == [
        round(p, 10) for p in result.proximities
    ], "K-dash must equal the brute-force ranking"
    print("\nverified: identical to the brute-force proximity ranking")


if __name__ == "__main__":
    main()
