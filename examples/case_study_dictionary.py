#!/usr/bin/env python
"""Table 2 case study: ranked term lists on the dictionary graph.

Reproduces the paper's Appendix D.2 experiment: for company and operating
system names, print the top-5 highest-proximity terms found by K-dash
(exact) and by NB_LIN (approximate), and watch the approximate lists
drift away from the exact ones.

Run with::

    python examples/case_study_dictionary.py
"""

from __future__ import annotations

from repro import KDash, NBLin, direct_solve_rwr, top_k_from_vector
from repro.datasets import load_dataset
from repro.graph import column_normalized_adjacency

TERMS = ("microsoft", "apple", "microsoft-windows", "mac-os", "linux")


def main() -> None:
    dataset = load_dataset("Dictionary")
    graph = dataset.graph
    print(f"dictionary graph: {graph.n_nodes} terms, {graph.n_edges} links")

    index = KDash(graph, c=0.95).build()
    nb_lin = NBLin(graph, c=0.95, target_rank=40).build()
    adjacency = column_normalized_adjacency(graph)

    for term in TERMS:
        query = graph.node_by_label(term)
        kdash = index.top_k(query, 5)
        approx = nb_lin.top_k(query, 5)
        exact_nodes = [
            u for u, _ in top_k_from_vector(direct_solve_rwr(adjacency, query, 0.95), 5)
        ]
        print(f"\n=== query: {term!r} ===")
        print("  K-dash :", ", ".join(graph.label_of(u) for u in kdash.nodes))
        print("  NB_LIN :", ", ".join(graph.label_of(u) for u in approx.nodes))
        agreement = len(set(kdash.nodes) & set(exact_nodes))
        print(f"  K-dash matches the exact ranking on {agreement}/5 positions "
              f"(searched {kdash.n_computed}/{graph.n_nodes} nodes)")


if __name__ == "__main__":
    main()
