#!/usr/bin/env python
"""Item recommendation over a user–tag–item graph (Konstas et al. style).

The paper's Section 2 motivates RWR for recommender systems: "a graph
that connects users to tags and tags to items, where the probabilities of
relevance for items are given by RWR proximities".  This example builds a
synthetic social-tagging graph, recommends items for a user with K-dash,
and compares against a simple popularity baseline.

Run with::

    python examples/recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import KDash, QueryEngine
from repro.graph import DiGraph


def build_tagging_graph(
    n_users: int = 300,
    n_tags: int = 80,
    n_items: int = 500,
    seed: int = 3,
):
    """A tripartite user–tag–item graph with planted taste groups.

    Users belong to one of 8 taste groups; each group favours a subset
    of tags, and each tag points at a subset of items.  Edges: user <->
    tag (tagging activity), tag <-> item (tag assignments), user <-> user
    (friendship within groups, the "social knowledge" of the paper).
    """
    rng = np.random.default_rng(seed)
    n = n_users + n_tags + n_items
    labels = (
        [f"user-{i}" for i in range(n_users)]
        + [f"tag-{i}" for i in range(n_tags)]
        + [f"item-{i}" for i in range(n_items)]
    )
    g = DiGraph(n, labels=labels)
    tag0 = n_users
    item0 = n_users + n_tags
    n_groups = 8
    group_of_user = rng.integers(0, n_groups, size=n_users)
    group_tags = [
        rng.choice(n_tags, size=n_tags // n_groups, replace=False)
        for _ in range(n_groups)
    ]
    tag_items = [
        rng.choice(n_items, size=10, replace=False) for _ in range(n_tags)
    ]
    for user in range(n_users):
        my_tags = group_tags[group_of_user[user]]
        for tag in rng.choice(my_tags, size=min(4, my_tags.size), replace=False):
            g.add_edge(user, tag0 + int(tag), 1.0)
            g.add_edge(tag0 + int(tag), user, 1.0)
    for tag in range(n_tags):
        for item in tag_items[tag]:
            g.add_edge(tag0 + tag, item0 + int(item), 1.0)
            g.add_edge(item0 + int(item), tag0 + tag, 1.0)
    # Friendship edges inside taste groups.
    for user in range(n_users):
        friends = np.flatnonzero(group_of_user == group_of_user[user])
        for f in rng.choice(friends, size=min(3, friends.size), replace=False):
            if int(f) != user:
                g.add_edge(user, int(f), 0.5)
    return g, item0, group_of_user, group_tags, tag_items


def main() -> None:
    graph, item0, group_of_user, group_tags, tag_items = build_tagging_graph()
    index = KDash(graph, c=0.85).build()

    user = 5
    group = group_of_user[user]
    print(f"recommending for user-{user} (taste group {group})")

    # Rank items by RWR proximity: query the user, keep item nodes only.
    # Over-fetch (k = 200) then filter to the item id range.
    result = index.top_k(user, k=200)
    recommendations = [
        (node, p) for node, p in result.items if node >= item0
    ][:10]

    print("\ntop-10 recommended items (exact RWR proximities):")
    relevant_items = set()
    for tag in group_tags[group]:
        relevant_items.update(int(i) + item0 for i in tag_items[int(tag)])
    hits = 0
    for rank, (node, proximity) in enumerate(recommendations, start=1):
        in_taste = node in relevant_items
        hits += in_taste
        print(
            f"  {rank:2d}. {graph.label_of(node):10s} proximity {proximity:.6f}"
            f"  {'<- matches taste group' if in_taste else ''}"
        )
    print(f"\ntaste-group hit rate: {hits}/10")

    # Popularity baseline: most-tagged items, ignoring the user entirely.
    popularity = {}
    for items in tag_items:
        for item in items:
            popularity[int(item)] = popularity.get(int(item), 0) + 1
    popular = sorted(popularity, key=lambda i: -popularity[i])[:10]
    baseline_hits = sum(1 for i in popular if i + item0 in relevant_items)
    print(f"popularity-baseline hit rate: {baseline_hits}/10")
    print("\nRWR personalises: its hit rate should beat raw popularity.")

    # Serving a traffic burst: many users hit the recommender at once,
    # and popular users repeat.  QueryEngine batches the whole burst
    # over one shared workspace, dedupes repeats and caches results.
    rng = np.random.default_rng(17)
    burst = rng.choice(40, size=200).tolist()  # 200 requests, 40 users
    engine = QueryEngine(index)
    results = engine.top_k_many(burst, k=20)
    stats = engine.last_stats
    print(
        f"\nserved a burst of {stats.n_queries} requests in "
        f"{stats.seconds * 1000:.1f}ms "
        f"({stats.queries_per_second:,.0f} queries/s; "
        f"{stats.executed} scans executed, {stats.dedup_hits} deduped)"
    )
    assert results[0].items == index.top_k(burst[0], k=20).items


if __name__ == "__main__":
    main()
